/// \file
/// \brief 2D-mesh NoC: policy-routed routers + AXI network interfaces.
///
/// The third fabric of the "regulation is interconnect-agnostic" claim: an
/// R x C mesh of routers, each optionally hosting one AXI manager and one
/// subordinate (reached through the same per-source egress staging and
/// `ic::AxiMux` scheme as the ring NI). The routing decision lives in
/// noc/routing.hpp as a pluggable `RoutingPolicy` — deterministic XY / YX
/// dimension order, per-worm randomized O1TURN (two VCs, one per route
/// class), or turn-model adaptive west-first (output chosen by per-VC
/// occupancy among the permitted hops). Every policy is minimal and
/// deadlock-free (per-policy arguments in routing.hpp), and the ejecting
/// NI restores per-pair injection order, so the request/response split and
/// the AXI same-ID rules hold under all of them. Unlike the single-lane
/// ring, a mesh router moves up to one packet per output port per cycle,
/// so independent flows on disjoint paths do not serialize — the
/// multi-path contention regime the DoS matrix probes. Every link is a
/// wormhole channel (see credit.hpp): a data worm occupies its output port
/// for `flits_per_packet` cycles, which is exactly the head-of-line
/// blocking at the memory-column merge routers the matrix exists to
/// expose — and exactly the hotspot the routing-policy axis moves around.
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "ic/mux.hpp"
#include "noc/credit.hpp"
#include "noc/ni.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"

#include "sim/component.hpp"
#include "sim/context.hpp"

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace realm::noc {

/// One mesh router + network interface. Up to four neighbor ports per
/// virtual network (request / response), one local manager, one local
/// subordinate. Per cycle: every input port may advance one packet (the
/// first movable VC head wins, rotating per-port VC priority so neither
/// class starves; ejection is single-ported per network, like the ring
/// NI), each output port accepts at most one packet, inputs arbitrate
/// round-robin, and forwarding has priority over injection. The next hop
/// comes from the fabric's `RoutingPolicy`; when the policy permits more
/// than one productive hop (west-first), the router takes the candidate
/// whose target VC holds the fewest buffered flits.
class MeshRouter : public sim::Component {
public:
    /// Neighbor links, indexed by `MeshDir`; nullptr at mesh edges.
    /// `in[d]` carries packets *from* the neighbor in direction d,
    /// `out[d]` carries packets *toward* it.
    struct Ports {
        std::array<NocLink*, kMeshDirs> req_in{};
        std::array<NocLink*, kMeshDirs> req_out{};
        std::array<NocLink*, kMeshDirs> rsp_in{};
        std::array<NocLink*, kMeshDirs> rsp_out{};
    };

    /// \param deferred_credits  Stage credit releases for the cycle-edge
    ///        flush (required under spatial sharding; `NocMesh` always
    ///        passes true so behaviour never depends on the shard count).
    MeshRouter(sim::SimContext& ctx, std::string name, NodeId node_id,
               NodeId cols, NodeId num_nodes, ic::AddrMap map,
               axi::AxiChannel* local_mgr,
               std::vector<axi::AxiChannel*> egress, Ports ports,
               const NocFlowConfig& fc, CreditBook* book,
               RoutingPolicy routing = RoutingPolicy::kXY,
               bool deferred_credits = false);

    void reset() override;
    void tick() override;

    [[nodiscard]] RoutingPolicy routing() const noexcept { return routing_; }
    /// NI bookkeeping (reorder-stash introspection for invariant checks).
    [[nodiscard]] const NocNi& ni() const noexcept { return ni_; }

    /// \name Statistics
    ///@{
    [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }
    [[nodiscard]] std::uint64_t ejected() const noexcept { return ejected_; }
    [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
    /// Cycles an input head could not move (output busy/backpressured or
    /// ejection staging full) — the mesh analog of ring stalls.
    [[nodiscard]] std::uint64_t stall_cycles() const noexcept { return stalls_; }
    ///@}

private:
    void service_network(bool request_net);
    void inject_requests();
    void inject_responses();
    /// Injection-side routing: computes the permitted hops for `dest` and
    /// picks an output (asserting the set is non-empty — a node never
    /// routes to itself).
    [[nodiscard]] NocLink* route_out(bool request_net, NodeId dest,
                                     std::uint32_t flits, std::uint8_t vc);
    /// Picks the best permitted output for a worm from an already-computed
    /// hop set (`from` is the arrival direction for the 180-degree-turn
    /// assertion; nullopt at injection). Split from `route_out` so the
    /// forwarding hot loop computes `permitted_hops` exactly once per
    /// packet.
    [[nodiscard]] NocLink* pick_output(bool request_net, const HopSet& hops,
                                       std::uint32_t flits, std::uint8_t vc,
                                       std::optional<MeshDir> from);
    void update_activity();

    NodeId id_;
    NodeId cols_;
    ic::AddrMap map_;
    axi::AxiChannel* local_mgr_;
    std::vector<axi::AxiChannel*> egress_;
    Ports ports_;
    RoutingPolicy routing_;
    std::uint8_t num_vcs_;

    NocNi ni_;

    /// Round-robin input priority per network (advances only when a packet
    /// moved, so an idle tick stays the promised no-op).
    std::uint8_t req_rr_ = 0;
    std::uint8_t rsp_rr_ = 0;
    /// Per-port VC priority per network (rotates past the VC that moved).
    std::array<std::uint8_t, kMeshDirs> req_vc_rr_{};
    std::array<std::uint8_t, kMeshDirs> rsp_vc_rr_{};
    /// Per-cycle output reservations (one packet per port per cycle).
    std::array<bool, kMeshDirs> req_out_used_{};
    std::array<bool, kMeshDirs> rsp_out_used_{};

    std::uint64_t injected_ = 0;
    std::uint64_t ejected_ = 0;
    std::uint64_t forwarded_ = 0;
    std::uint64_t stalls_ = 0;
};

/// Mesh assembly: routers, neighbor links, per-subordinate egress muxes.
/// Mirrors `NocRing`'s interface so the topology subsystem treats both
/// fabrics through one code path.
class NocMesh {
public:
    /// \param node_map          decodes addresses to node ids (row-major).
    /// \param subordinate_nodes nodes hosting a local subordinate.
    /// \param flow              transport model and its knobs (shared with
    ///        `NocRing` — the flow-control argument is fabric-independent).
    /// \param routing           routing policy applied fabric-wide (fixes
    ///        the per-link VC count: 2 under O1TURN, 1 otherwise).
    /// \param tile_shards       explicit tile -> shard map (one entry per
    ///        node, each < the context's shard count). Empty selects the
    ///        default column-stripe partition. Any map yields bit-identical
    ///        simulated results — a tile's components always co-shard and
    ///        every inter-tile path is edge-registered — so the choice is
    ///        purely a host-side load-balancing decision (see
    ///        scenario/partition.hpp for the profile-guided builder).
    NocMesh(sim::SimContext& ctx, std::string name, NodeId rows,
            NodeId cols, ic::AddrMap node_map,
            std::vector<NodeId> subordinate_nodes, NocFlowConfig flow = {},
            RoutingPolicy routing = RoutingPolicy::kXY,
            std::vector<unsigned> tile_shards = {});

    NocMesh(const NocMesh&) = delete;
    NocMesh& operator=(const NocMesh&) = delete;

    /// Channel a manager at `node` drives (requests in, responses out).
    [[nodiscard]] axi::AxiChannel& manager_port(NodeId node) {
        return *mgr_ports_.at(node);
    }
    /// Channel to attach a subordinate model at `node`.
    [[nodiscard]] axi::AxiChannel& subordinate_port(NodeId node);

    [[nodiscard]] MeshRouter& router(NodeId i) { return *routers_.at(i); }
    [[nodiscard]] NodeId rows() const noexcept { return rows_; }
    [[nodiscard]] NodeId cols() const noexcept { return cols_; }
    [[nodiscard]] NodeId num_nodes() const noexcept {
        return static_cast<NodeId>(routers_.size());
    }
    /// Spatial shard hosting node `n`'s tile: the explicit map when one was
    /// provided, the default column stripe otherwise. Fixed at construction
    /// from the context's shard setting, so all of a tile's components
    /// (router, mux, memory, attached cores) land on one shard and every
    /// cross-shard path is an edge-registered neighbor link.
    [[nodiscard]] unsigned shard_of_node(NodeId n) const noexcept {
        return tile_shards_.empty()
                   ? static_cast<unsigned>(n % cols_) * stripe_shards_ / cols_
                   : tile_shards_[n];
    }
    [[nodiscard]] const NocFlowConfig& flow() const noexcept { return flow_; }
    [[nodiscard]] RoutingPolicy routing() const noexcept { return routing_; }
    /// End-to-end credit book.
    [[nodiscard]] const CreditBook* credit_book() const noexcept {
        return book_.get();
    }

    /// Aggregate mesh statistics (hops forwarded across all routers).
    [[nodiscard]] std::uint64_t total_forwarded() const noexcept;
    /// Aggregate head-of-line stall cycles across all routers.
    [[nodiscard]] std::uint64_t total_stalls() const noexcept;
    /// Aggregate W-channel reservation stalls across the subordinate-side
    /// egress muxes (the DoS exposure metric, cf. `NocRing`).
    [[nodiscard]] std::uint64_t total_mux_w_stalls() const noexcept;

    /// Asserts every flow-control invariant of the fabric (see
    /// `NocRing::check_flow_invariants`), including the reorder-stash
    /// bounds of every NI.
    void check_flow_invariants() const;

private:
    NodeId rows_;
    NodeId cols_;
    /// Column stripes used for spatial sharding (min(shards, cols)).
    unsigned stripe_shards_ = 1;
    /// Explicit tile -> shard map (empty = column stripes).
    std::vector<unsigned> tile_shards_;
    NocFlowConfig flow_;
    RoutingPolicy routing_;
    std::unique_ptr<CreditBook> book_;
    std::vector<std::unique_ptr<axi::AxiChannel>> mgr_ports_;
    /// Neighbor links per network and orientation. `h_*[i]` connects node i
    /// to node i+1 (east/west pair, absent on the last column); `v_*[i]`
    /// connects node i to node i+cols (south/north pair, absent on the last
    /// row). `*_fwd` flows east/south, `*_rev` flows west/north.
    std::vector<std::unique_ptr<NocLink>> h_req_fwd_, h_req_rev_;
    std::vector<std::unique_ptr<NocLink>> h_rsp_fwd_, h_rsp_rev_;
    std::vector<std::unique_ptr<NocLink>> v_req_fwd_, v_req_rev_;
    std::vector<std::unique_ptr<NocLink>> v_rsp_fwd_, v_rsp_rev_;
    /// egress_[node][src] (nullptr when `node` hosts no subordinate).
    std::vector<std::vector<std::unique_ptr<axi::AxiChannel>>> egress_;
    std::vector<std::unique_ptr<axi::AxiChannel>> sub_ports_;
    std::vector<std::unique_ptr<ic::AxiMux>> muxes_;
    std::vector<std::unique_ptr<MeshRouter>> routers_;
    std::vector<int> sub_index_; ///< node -> index into sub_ports_ or -1
};

} // namespace realm::noc
