/// \file
/// \brief Ablation of the **write buffer** (Section III-A, Figure 3b): a
///        malicious manager reserves write bandwidth and stalls its data —
///        the Cut&Forward [14] denial-of-service vector.
///
/// Attacker: a DMA in `reserve_before_data` mode that trickles one W beat
/// every 64 cycles. Victim: a core issuing stores to the same subordinate.
/// Without the write buffer the attacker's reserved-but-starved bursts
/// stall the victim's writes behind them; with the write buffer, AWs leave
/// the REALM unit only with their data complete, so the interconnect is
/// never starved.
///
/// Runs through the scenario engine (`--threads N`, `--json PATH`).
#include "scenario/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace realm::scenario;
    BenchOptions opts = parse_bench_args(argc, argv);

    std::puts("== Ablation: write buffer vs the stalling-manager DoS attack ==");
    std::puts("(attacker reserves write bandwidth, then trickles data: 1 beat / 64 cyc)\n");

    Sweep sweep = make_sweep("ablation-dos");
    const auto results = run_with_options(opts, sweep);
    const ScenarioResult& off = results[0];
    const ScenarioResult& on = results[1];

    std::printf("%-26s %14s %14s\n", "", "wbuf disabled", "wbuf enabled");
    std::printf("%-26s %14.1f %14.1f\n", "victim store lat (mean)", off.store_lat_mean,
                on.store_lat_mean);
    std::printf("%-26s %14llu %14llu\n", "victim store lat (max)",
                static_cast<unsigned long long>(off.store_lat_max),
                static_cast<unsigned long long>(on.store_lat_max));
    std::printf("%-26s %14llu %14llu\n", "victim run cycles",
                static_cast<unsigned long long>(off.run_cycles),
                static_cast<unsigned long long>(on.run_cycles));
    std::printf("%-26s %14llu %14llu\n", "xbar W-stall cycles",
                static_cast<unsigned long long>(off.xbar_w_stalls),
                static_cast<unsigned long long>(on.xbar_w_stalls));
    std::printf("%-26s %14llu %14llu\n", "attacker cut-throughs",
                static_cast<unsigned long long>(off.dma_cut_through),
                static_cast<unsigned long long>(on.dma_cut_through));

    const double speedup = static_cast<double>(off.run_cycles) /
                           static_cast<double>(on.run_cycles);
    std::printf("\nwrite buffer speeds the victim up by %.1fx and removes the\n", speedup);
    std::puts("interconnect starvation (paper: the buffer forwards AW and W only once");
    std::puts("the write data is fully contained within the buffer).");
    return speedup < 1.5 ? 1 : 0;
}
