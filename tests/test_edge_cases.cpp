/// Cross-module edge cases: error-response propagation through the REALM
/// unit's coalescer, WRAP bursts end-to-end, LLC byte strobes, the AXI
/// tracer, and isolation corner cases.
#include "axi/builder.hpp"
#include "axi/trace.hpp"
#include "mem/axi_mem_slave.hpp"
#include "mem/error_slave.hpp"
#include "mem/llc.hpp"
#include "realm/realm_unit.hpp"
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace realm {
namespace {

using test::collect_b;
using test::collect_read_burst;
using test::push_write_burst;
using test::step_until;

// --- Error propagation through the REALM unit --------------------------------

class RealmErrorFixture : public ::testing::Test {
protected:
    RealmErrorFixture() {
        err = std::make_unique<mem::ErrorSlave>(ctx, "err", down);
        rt::RealmUnitConfig cfg;
        cfg.fragment_beats = 4;
        unit = std::make_unique<rt::RealmUnit>(ctx, "realm", up, down, cfg);
    }
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down", 2, /*resp_passthrough=*/true};
    std::unique_ptr<mem::ErrorSlave> err;
    std::unique_ptr<rt::RealmUnit> unit;
};

TEST_F(RealmErrorFixture, FragmentedWriteCoalescesDecErr) {
    // A 16-beat write fragmented into 4 children, all answered DECERR: the
    // manager must see exactly one DECERR parent response.
    push_write_burst(ctx, up, 1, 0x0, 16, 8);
    const axi::BFlit b = collect_b(ctx, up);
    EXPECT_EQ(b.resp, axi::Resp::kDecErr);
    EXPECT_EQ(b.id, 1U);
    ctx.run(20);
    EXPECT_FALSE(axi::ManagerView{up}.has_b()) << "exactly one parent B";
}

TEST_F(RealmErrorFixture, FragmentedReadPropagatesPerBeatErrors) {
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(2, 0x0, 8, 3));
    int beats = 0;
    int err_beats = 0;
    while (beats < 8) {
        step_until(ctx, [&] { return mgr.has_r(); });
        const axi::RFlit r = mgr.recv_r();
        ++beats;
        err_beats += r.resp == axi::Resp::kDecErr ? 1 : 0;
        EXPECT_EQ(r.last, beats == 8) << "parent RLAST must be re-gated";
    }
    EXPECT_EQ(err_beats, 8);
}

// --- WRAP bursts end-to-end ---------------------------------------------------

TEST(WrapBurst, RoundTripsThroughRealmAndMemory) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down", 2, true};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{8, 8, 0}};
    rt::RealmUnitConfig cfg;
    cfg.fragment_beats = 1; // must NOT apply to WRAP bursts
    rt::RealmUnit unit{ctx, "realm", up, down, cfg};

    auto& store = static_cast<mem::SramBackend&>(slave.backend()).store();
    for (axi::Addr a = 0x1000; a < 0x1020; a += 8) { store.write_u64(a, a); }

    // WRAP read of 4 beats starting mid-window: beats wrap to the window
    // start; data must arrive in wrap order with a single RLAST.
    axi::ManagerView mgr{up};
    axi::ArFlit ar = axi::make_ar(1, 0x1010, 4, 3);
    ar.burst = axi::Burst::kWrap;
    mgr.send_ar(ar);
    std::vector<std::uint64_t> got;
    for (int i = 0; i < 4; ++i) {
        step_until(ctx, [&] { return mgr.has_r(); });
        const axi::RFlit r = mgr.recv_r();
        std::uint64_t v = 0;
        std::memcpy(&v, r.data.bytes.data(), 8);
        got.push_back(v);
        EXPECT_EQ(r.last, i == 3);
    }
    EXPECT_EQ(got, (std::vector<std::uint64_t>{0x1010, 0x1018, 0x1000, 0x1008}));
    EXPECT_EQ(unit.splitter().bursts_passed_intact(), 1U);
    EXPECT_EQ(unit.splitter().fragments_created(), 0U);
}

TEST(WrapBurst, LlcServesWrapOrder) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
    mem::LlcConfig lcfg;
    lcfg.sets = 4;
    lcfg.ways = 2;
    mem::Llc llc{ctx, "llc", up, down, lcfg};
    mem::AxiMemSlave dram{ctx, "dram", down, std::make_unique<mem::DramBackend>(),
                          mem::AxiMemSlaveConfig{8, 8, 0}};
    auto& store = static_cast<mem::DramBackend&>(dram.backend()).store();
    for (axi::Addr a = 0x2000; a < 0x2040; a += 8) { store.write_u64(a, ~a); }
    llc.warm_range(0x2000, 64, store);

    axi::ManagerView mgr{up};
    axi::ArFlit ar = axi::make_ar(1, 0x2018, 4, 3);
    ar.burst = axi::Burst::kWrap;
    mgr.send_ar(ar);
    std::vector<std::uint64_t> got;
    for (int i = 0; i < 4; ++i) {
        step_until(ctx, [&] { return mgr.has_r(); });
        const axi::RFlit r = mgr.recv_r();
        std::uint64_t v = 0;
        std::memcpy(&v, r.data.bytes.data(), 8);
        got.push_back(v);
    }
    EXPECT_EQ(got, (std::vector<std::uint64_t>{~0x2018ULL, ~0x2000ULL, ~0x2008ULL,
                                               ~0x2010ULL}));
}

// --- LLC byte strobes ---------------------------------------------------------

TEST(LlcStrobes, PartialWriteOnlyTouchesEnabledLanes) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
    mem::Llc llc{ctx, "llc", up, down, {}};
    mem::AxiMemSlave dram{ctx, "dram", down, std::make_unique<mem::DramBackend>(),
                          mem::AxiMemSlaveConfig{8, 8, 0}};
    auto& store = static_cast<mem::DramBackend&>(dram.backend()).store();
    store.write_u64(0x3000, 0x1111'1111'1111'1111ULL);
    llc.warm_range(0x3000, 64, store);

    axi::ManagerView mgr{up};
    mgr.send_aw(axi::make_aw(1, 0x3000, 1, 3));
    ctx.step();
    axi::WFlit w;
    w.data.bytes.fill(0xFF);
    w.strb = 0x0F; // low 4 lanes only
    w.last = true;
    mgr.send_w(w);
    (void)collect_b(ctx, up);

    mgr.send_ar(axi::make_ar(1, 0x3000, 1, 3));
    const axi::RFlit r = collect_read_burst(ctx, up, 1);
    std::uint64_t v = 0;
    std::memcpy(&v, r.data.bytes.data(), 8);
    EXPECT_EQ(v, 0x1111'1111'FFFF'FFFFULL);
}

// --- AXI tracer ---------------------------------------------------------------

TEST(Tracer, RecordsAndDumpsCsv) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
    axi::AxiTracer tracer{ctx, "trace", up, down, 1024};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{8, 8, 0}};

    push_write_burst(ctx, up, 3, 0x40, 2, 8);
    (void)collect_b(ctx, up);
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(4, 0x40, 2, 3));
    (void)collect_read_burst(ctx, up, 2);

    // AW + 2 W + B + AR + 2 R = 7 records.
    EXPECT_EQ(tracer.total_recorded(), 7U);
    std::ostringstream os;
    tracer.write_csv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("cycle,channel,id,addr,len,last,resp"), std::string::npos);
    EXPECT_NE(csv.find(",AW,3,64,1,0,OKAY"), std::string::npos);
    EXPECT_NE(csv.find(",AR,4,64,1,0,OKAY"), std::string::npos);
}

TEST(Tracer, RingBufferDropsOldestHalf) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
    axi::AxiTracer tracer{ctx, "trace", up, down, 8};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{8, 8, 0}};
    axi::ManagerView mgr{up};
    for (int i = 0; i < 12; ++i) {
        step_until(ctx, [&] { return mgr.can_send_ar(); });
        mgr.send_ar(axi::make_ar(1, static_cast<axi::Addr>(i * 8), 1, 3));
        (void)collect_read_burst(ctx, up, 1);
    }
    EXPECT_EQ(tracer.total_recorded(), 24U); // AR + R each
    EXPECT_GT(tracer.dropped(), 0U);
    EXPECT_LE(tracer.records().size(), 8U);
}

// --- Isolation while traffic is pending --------------------------------------

TEST(IsolationCorner, BudgetIsolationMidBurstLetsBurstFinish) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down", 2, true};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{16, 16, 0}};
    rt::RealmUnit unit{ctx, "realm", up, down, {}};
    // Budget covers exactly one 32-beat burst (256 B).
    unit.set_region(0, rt::RegionConfig{0x0, 0x10000, 256, 5000});

    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x0, 32, 3));
    // The burst depletes the budget at acceptance but must still complete.
    const axi::RFlit last = collect_read_burst(ctx, up, 32);
    EXPECT_TRUE(last.last);
    EXPECT_EQ(unit.state(), rt::RealmState::kIsolatedBudget);
    EXPECT_TRUE(unit.fully_isolated());
}

TEST(IsolationCorner, WDataOfAcceptedWriteFlowsWhileIsolated) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down", 2, true};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{16, 16, 0}};
    rt::RealmUnit unit{ctx, "realm", up, down, {}};
    unit.set_region(0, rt::RegionConfig{0x0, 0x10000, 64, 10000});

    axi::ManagerView mgr{up};
    // The 16-beat write (128 B) overdraws the 64 B budget at acceptance.
    mgr.send_aw(axi::make_aw(1, 0x0, 16, 3));
    ctx.run(3);
    EXPECT_EQ(unit.state(), rt::RealmState::kIsolatedBudget);
    // Its data must still be accepted and the write must complete.
    for (int i = 0; i < 16; ++i) {
        step_until(ctx, [&] { return mgr.can_send_w(); });
        axi::WFlit w;
        w.last = i == 15;
        mgr.send_w(w);
    }
    const axi::BFlit b = collect_b(ctx, up);
    EXPECT_EQ(b.resp, axi::Resp::kOkay);
}

// --- SoC: two DSA ports contending -------------------------------------------

TEST(SocTwoDsa, BudgetsArbitrateBetweenAccelerators) {
    sim::SimContext ctx;
    soc::SocConfig cfg;
    cfg.num_dsa = 2;
    soc::CheshireSoc soc{ctx, cfg};
    for (axi::Addr a = 0; a < 0x20000; a += 8) {
        soc.dram_image().write_u64(0x8000'0000 + a, a);
    }
    soc.warm_llc(0x8000'0000, 0x20000);
    soc.queue_boot_script({
        soc::CheshireSoc::BootRegionPlan{1ULL << 30, 1ULL << 20, 256}, // core
        soc::CheshireSoc::BootRegionPlan{4000, 1000, 8},               // dsa0: 4 B/cyc
        soc::CheshireSoc::BootRegionPlan{1000, 1000, 8},               // dsa1: 1 B/cyc
    });
    ASSERT_TRUE(ctx.run_until([&] { return soc.boot_master().done(); }, 10000));

    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 64;
    traffic::DmaEngine dma0{ctx, "d0", soc.dsa_port(0), dcfg};
    traffic::DmaEngine dma1{ctx, "d1", soc.dsa_port(1), dcfg};
    dma0.push_job(traffic::DmaJob{0x8001'0000, 0x7000'0000, 0x4000, true});
    dma1.push_job(traffic::DmaJob{0x8001'8000, 0x7001'0000, 0x4000, true});
    const sim::Cycle horizon = 50000;
    ctx.run(horizon);

    const double bw0 = static_cast<double>(dma0.bytes_read()) / static_cast<double>(horizon);
    const double bw1 = static_cast<double>(dma1.bytes_read()) / static_cast<double>(horizon);
    EXPECT_NEAR(bw0, 4.0, 0.5);
    EXPECT_NEAR(bw1, 1.0, 0.3);
}

} // namespace
} // namespace realm
