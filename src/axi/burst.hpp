/// \file
/// \brief Pure burst arithmetic per the AXI4 specification: beat addresses,
///        wrap boundaries, 4 KiB checks, and burst fragmentation.
///
/// Kept free of simulation state so the granular burst splitter's math is
/// unit- and property-testable in isolation.
#pragma once

#include "axi/types.hpp"

#include <cstdint>
#include <vector>

namespace realm::axi {

/// Address-channel view of a burst: everything needed for beat math.
struct BurstDescriptor {
    Addr addr = 0;            ///< AxADDR: address of the first beat (may be unaligned).
    std::uint8_t len = 0;     ///< AxLEN: beats - 1.
    std::uint8_t size = 0;    ///< AxSIZE: log2 bytes per beat.
    Burst burst = Burst::kIncr;

    [[nodiscard]] std::uint32_t beats() const noexcept { return std::uint32_t{len} + 1; }
    [[nodiscard]] std::uint32_t beat_bytes() const noexcept { return bytes_per_beat(size); }
    /// Total bytes named by the burst (beats x beat size; unaligned first
    /// beats transfer fewer valid lanes but reserve full beats on the bus).
    [[nodiscard]] std::uint64_t total_bytes() const noexcept {
        return std::uint64_t{beats()} * beat_bytes();
    }

    friend bool operator==(const BurstDescriptor&, const BurstDescriptor&) = default;
};

/// Address of beat `beat_index` (0-based) per the AXI4 address equations:
/// FIXED repeats AxADDR; INCR aligns to the size boundary after the first
/// beat; WRAP additionally wraps at `beats * beat_bytes`.
[[nodiscard]] Addr beat_address(const BurstDescriptor& desc, std::uint32_t beat_index) noexcept;

/// Lowest address of the wrap window for a WRAP burst.
[[nodiscard]] Addr wrap_boundary(const BurstDescriptor& desc) noexcept;

/// True iff the burst stays within one 4 KiB page (AXI4 requirement for
/// INCR; FIXED trivially holds; WRAP holds by construction when legal).
[[nodiscard]] bool within_4k(const BurstDescriptor& desc) noexcept;

/// Validity per spec: WRAP needs len in {1,3,7,15} and size-aligned address;
/// INCR must not cross 4 KiB.
[[nodiscard]] bool is_legal(const BurstDescriptor& desc) noexcept;

/// Whether the granular burst splitter may fragment this burst:
/// - FIXED bursts address the same location every beat and must pass intact;
/// - WRAP bursts have non-linear addressing and pass intact;
/// - non-modifiable (per AxCACHE) INCR bursts of <= 16 beats must pass
///   intact (AXI4 spec section A4.4);
/// - exclusive-access (AxLOCK) bursts are atomic and pass intact.
[[nodiscard]] bool is_fragmentable(const BurstDescriptor& desc, std::uint8_t cache,
                                   bool lock) noexcept;

/// Splits an INCR burst into children of at most `granularity_beats` beats.
/// The first child starts at `desc.addr`; subsequent children start at the
/// size-aligned address following the previous child's last beat. Children
/// preserve size and burst type; the concatenation of child beats addresses
/// exactly the parent's beats (verified by property tests).
///
/// Precondition: `desc` must be fragmentable and legal, `granularity_beats`
/// in [1, 256]. A granularity >= the burst length yields a single child
/// equal to the parent.
[[nodiscard]] std::vector<BurstDescriptor> fragment_burst(const BurstDescriptor& desc,
                                                          std::uint32_t granularity_beats);

/// Number of children `fragment_burst` would produce (cheap, no allocation).
[[nodiscard]] std::uint32_t fragment_count(const BurstDescriptor& desc,
                                           std::uint32_t granularity_beats) noexcept;

} // namespace realm::axi
