#include "ic/demux.hpp"

#include "sim/check.hpp"

#include <utility>

namespace realm::ic {

AxiDemux::AxiDemux(sim::SimContext& ctx, std::string name, axi::AxiChannel& upstream,
                   std::vector<axi::AxiChannel*> downstreams, AddrMap map,
                   std::optional<std::uint32_t> error_port)
    : Component{ctx, std::move(name)},
      up_{upstream},
      downs_{std::move(downstreams)},
      map_{std::move(map)},
      error_port_{error_port},
      b_arb_{static_cast<std::uint32_t>(downs_.size())},
      r_arb_{static_cast<std::uint32_t>(downs_.size())} {
    REALM_EXPECTS(!downs_.empty(), "demux needs at least one subordinate");
    for (axi::AxiChannel* ch : downs_) { REALM_EXPECTS(ch != nullptr, "null downstream"); }
    if (error_port_) {
        REALM_EXPECTS(*error_port_ < downs_.size(), "error port out of range");
    }
}

void AxiDemux::reset() {
    w_route_.clear();
    w_beats_left_.clear();
    w_in_flight_.clear();
    r_in_flight_.clear();
    b_arb_.reset();
    r_arb_.reset();
    decode_errors_ = 0;
    ordering_stalls_ = 0;
}

std::uint32_t AxiDemux::route(axi::Addr addr) {
    if (const auto port = map_.decode(addr)) { return *port; }
    REALM_EXPECTS(error_port_.has_value(),
                  name() + ": unmapped address with no error port configured");
    return *error_port_;
}

void AxiDemux::forward_aw() {
    if (!up_.has_aw()) { return; }
    const axi::AwFlit& head = up_.peek_aw();
    const std::uint32_t port = route(head.addr);
    // Same-ID ordering: stall if this ID is in flight to another port.
    if (const auto it = w_in_flight_.find(head.id);
        it != w_in_flight_.end() && it->second.count > 0 && it->second.port != port) {
        ++ordering_stalls_;
        return;
    }
    if (!downs_[port]->aw.can_push()) { return; }
    axi::AwFlit f = up_.recv_aw();
    if (!map_.decode(f.addr)) { ++decode_errors_; }
    auto& fl = w_in_flight_[f.id];
    fl.port = port;
    ++fl.count;
    w_route_.push_back(port);
    w_beats_left_.push_back(f.beats());
    downs_[port]->aw.push(f);
}

void AxiDemux::forward_w() {
    if (w_route_.empty() || !up_.has_w()) { return; }
    const std::uint32_t port = w_route_.front();
    if (!downs_[port]->w.can_push()) { return; }
    axi::WFlit f = up_.recv_w();
    downs_[port]->w.push(f);
    std::uint32_t& left = w_beats_left_.front();
    --left;
    if (left == 0) {
        REALM_ENSURES(f.last, name() + ": W burst finished without WLAST");
        w_route_.pop_front();
        w_beats_left_.pop_front();
    }
}

void AxiDemux::forward_ar() {
    if (!up_.has_ar()) { return; }
    const axi::ArFlit& head = up_.peek_ar();
    const std::uint32_t port = route(head.addr);
    if (const auto it = r_in_flight_.find(head.id);
        it != r_in_flight_.end() && it->second.count > 0 && it->second.port != port) {
        ++ordering_stalls_;
        return;
    }
    if (!downs_[port]->ar.can_push()) { return; }
    axi::ArFlit f = up_.recv_ar();
    if (!map_.decode(f.addr)) { ++decode_errors_; }
    auto& fl = r_in_flight_[f.id];
    fl.port = port;
    ++fl.count;
    downs_[port]->ar.push(f);
}

void AxiDemux::collect_b() {
    if (!up_.can_send_b()) { return; }
    const int winner = b_arb_.pick([this](std::uint32_t i) { return downs_[i]->b.can_pop(); });
    if (winner < 0) { return; }
    const auto port = static_cast<std::uint32_t>(winner);
    b_arb_.commit(port);
    axi::BFlit f = downs_[port]->b.pop();
    if (auto it = w_in_flight_.find(f.id); it != w_in_flight_.end() && it->second.count > 0) {
        --it->second.count;
    }
    up_.send_b(f);
}

void AxiDemux::collect_r() {
    if (!up_.can_send_r()) { return; }
    const int winner = r_arb_.pick([this](std::uint32_t i) { return downs_[i]->r.can_pop(); });
    if (winner < 0) { return; }
    const auto port = static_cast<std::uint32_t>(winner);
    r_arb_.commit(port);
    axi::RFlit f = downs_[port]->r.pop();
    if (f.last) {
        if (auto it = r_in_flight_.find(f.id); it != r_in_flight_.end() && it->second.count > 0) {
            --it->second.count;
        }
    }
    up_.send_r(f);
}

void AxiDemux::tick() {
    forward_aw();
    forward_w();
    forward_ar();
    collect_b();
    collect_r();
}

} // namespace realm::ic
