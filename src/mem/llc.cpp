#include "mem/llc.hpp"

#include "axi/builder.hpp"
#include "axi/burst.hpp"
#include "sim/check.hpp"

#include <algorithm>
#include <cstring>

namespace realm::mem {

Llc::Llc(sim::SimContext& ctx, std::string name, axi::AxiChannel& upstream,
         axi::AxiChannel& downstream, LlcConfig config)
    : Component{ctx, std::move(name)},
      up_{upstream},
      down_{downstream},
      config_{config},
      tags_(std::size_t{config.sets} * config.ways),
      data_(std::size_t{config.sets} * config.ways * config.line_bytes) {
    REALM_EXPECTS(config_.line_bytes % config_.bus_bytes == 0,
                  "LLC line must be a whole number of bus beats");
    REALM_EXPECTS((config_.sets & (config_.sets - 1)) == 0, "LLC sets must be a power of two");
    upstream.wake_subordinate_on_request(*this);
    downstream.wake_manager_on_response(*this);
}

void Llc::reset() {
    std::fill(tags_.begin(), tags_.end(), WayState{});
    std::fill(data_.begin(), data_.end(), std::uint8_t{0});
    read_jobs_.clear();
    write_jobs_.clear();
    b_queue_.clear();
    read_stream_free_at_ = 0;
    next_init_at_ = 0;
    miss_state_ = MissState::kIdle;
    use_tick_ = 0;
    hits_ = 0;
    misses_ = 0;
    writebacks_ = 0;
    reads_served_ = 0;
    writes_served_ = 0;
}

int Llc::find_way(std::uint32_t set, std::uint64_t tag) const noexcept {
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        const WayState& ws = tags_[std::size_t{set} * config_.ways + w];
        if (ws.valid && ws.tag == tag) { return static_cast<int>(w); }
    }
    return -1;
}

std::uint32_t Llc::victim_way(std::uint32_t set) const noexcept {
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        const WayState& ws = tags_[std::size_t{set} * config_.ways + w];
        if (!ws.valid) { return w; }
        if (ws.last_use < oldest) {
            oldest = ws.last_use;
            victim = w;
        }
    }
    return victim;
}

std::uint8_t* Llc::line_data(std::uint32_t set, std::uint32_t way) noexcept {
    return data_.data() + (std::size_t{set} * config_.ways + way) * config_.line_bytes;
}

bool Llc::contains(axi::Addr addr) const noexcept {
    const std::uint64_t line = line_index(addr);
    return find_way(set_of(line), tag_of(line)) >= 0;
}

void Llc::warm_range(axi::Addr base, std::uint64_t bytes, const SparseMemory& image) {
    const axi::Addr first_line = base / config_.line_bytes;
    const axi::Addr last_line = (base + bytes - 1) / config_.line_bytes;
    for (axi::Addr line = first_line; line <= last_line; ++line) {
        const std::uint32_t set = set_of(line);
        const std::uint64_t tag = tag_of(line);
        int way = find_way(set, tag);
        if (way < 0) {
            way = static_cast<int>(victim_way(set));
            WayState& ws =
                tags_[std::size_t{set} * config_.ways + static_cast<std::uint32_t>(way)];
            REALM_EXPECTS(!(ws.valid && ws.dirty),
                          "warm_range would evict a dirty line; warm a cold cache");
            ws.valid = true;
            ws.dirty = false;
            ws.tag = tag;
        }
        WayState& ws = tags_[std::size_t{set} * config_.ways + static_cast<std::uint32_t>(way)];
        ws.last_use = ++use_tick_;
        image.read(line * config_.line_bytes,
                   std::span{line_data(set, static_cast<std::uint32_t>(way)),
                             config_.line_bytes});
    }
}

void Llc::accept_requests() {
    if (up_.has_ar() && read_jobs_.size() < config_.max_outstanding) {
        ReadJob job;
        job.ar = up_.recv_ar();
        job.accepted_at = now();
        read_jobs_.push_back(job);
    }
    if (up_.has_aw() && write_jobs_.size() < config_.max_outstanding) {
        WriteJob job;
        job.aw = up_.recv_aw();
        job.accepted_at = now();
        write_jobs_.push_back(job);
    }
}

bool Llc::start_miss(axi::Addr addr) {
    if (miss_state_ != MissState::kIdle) { return false; }
    ++misses_;
    miss_line_ = line_index(addr);
    miss_set_ = set_of(miss_line_);
    miss_way_ = victim_way(miss_set_);
    const WayState& victim = tags_[std::size_t{miss_set_} * config_.ways + miss_way_];
    if (victim.valid && victim.dirty) {
        wb_addr_ = (victim.tag * config_.sets + miss_set_) * config_.line_bytes;
        wb_beats_sent_ = 0;
        miss_state_ = MissState::kWbAw;
    } else {
        miss_state_ = MissState::kRefillAr;
    }
    return true;
}

void Llc::advance_miss_engine() {
    switch (miss_state_) {
    case MissState::kIdle: return;
    case MissState::kWbAw: {
        if (!down_.can_send_aw()) { return; }
        down_.send_aw(axi::make_aw(/*id=*/0, wb_addr_, config_.line_beats(),
                                   axi::size_of_bus(config_.bus_bytes), now()));
        miss_state_ = MissState::kWbW;
        return;
    }
    case MissState::kWbW: {
        if (!down_.can_send_w()) { return; }
        axi::WFlit w;
        std::memcpy(w.data.bytes.data(),
                    line_data(miss_set_, miss_way_) +
                        std::size_t{wb_beats_sent_} * config_.bus_bytes,
                    config_.bus_bytes);
        ++wb_beats_sent_;
        w.last = wb_beats_sent_ == config_.line_beats();
        down_.send_w(w);
        if (w.last) {
            ++writebacks_;
            miss_state_ = MissState::kWbB;
        }
        return;
    }
    case MissState::kWbB: {
        if (!down_.has_b()) { return; }
        down_.recv_b();
        miss_state_ = MissState::kRefillAr;
        return;
    }
    case MissState::kRefillAr: {
        if (!down_.can_send_ar()) { return; }
        down_.send_ar(axi::make_ar(/*id=*/0, miss_line_ * config_.line_bytes,
                                   config_.line_beats(), axi::size_of_bus(config_.bus_bytes),
                                   now()));
        refill_beats_seen_ = 0;
        miss_state_ = MissState::kRefillR;
        return;
    }
    case MissState::kRefillR: {
        if (!down_.has_r()) { return; }
        const axi::RFlit r = down_.recv_r();
        std::memcpy(line_data(miss_set_, miss_way_) +
                        std::size_t{refill_beats_seen_} * config_.bus_bytes,
                    r.data.bytes.data(), config_.bus_bytes);
        ++refill_beats_seen_;
        if (r.last) {
            REALM_ENSURES(refill_beats_seen_ == config_.line_beats(),
                          name() + ": refill burst length mismatch");
            WayState& ws = tags_[std::size_t{miss_set_} * config_.ways + miss_way_];
            ws.valid = true;
            ws.dirty = false;
            ws.tag = tag_of(miss_line_);
            ws.last_use = ++use_tick_;
            miss_state_ = MissState::kIdle;
        }
        return;
    }
    }
}

void Llc::serve_read() {
    if (read_jobs_.empty()) { return; }
    ReadJob& job = read_jobs_.front();
    if (job.first_beat_at == sim::kNoCycle) {
        // Initiate the request: descriptor processing is rate-limited, then
        // the hit pipeline delivers the first beat; the R stream is a single
        // port shared across bursts.
        const sim::Cycle init = std::max(job.accepted_at, next_init_at_);
        next_init_at_ = init + config_.request_interval;
        job.first_beat_at = std::max(init + config_.hit_latency, read_stream_free_at_);
    }
    if (now() < job.first_beat_at || !up_.can_send_r()) { return; }

    const axi::BurstDescriptor desc = job.ar.descriptor();
    const axi::Addr addr = axi::beat_address(desc, job.next_beat);
    const std::uint64_t line = line_index(addr);
    const std::uint32_t set = set_of(line);
    const int way = find_way(set, tag_of(line));
    if (way < 0) {
        start_miss(addr); // retry this beat once the line is resident
        return;
    }
    ++hits_;
    WayState& ws = tags_[std::size_t{set} * config_.ways + static_cast<std::uint32_t>(way)];
    ws.last_use = ++use_tick_;

    axi::RFlit beat;
    beat.id = job.ar.id;
    beat.resp = axi::Resp::kOkay;
    const std::size_t offset = static_cast<std::size_t>(addr % config_.line_bytes);
    std::memcpy(beat.data.bytes.data(),
                line_data(set, static_cast<std::uint32_t>(way)) + offset, desc.beat_bytes());
    beat.last = job.next_beat + 1 == desc.beats();
    up_.send_r(beat);
    read_stream_free_at_ = now() + 1;
    ++job.next_beat;
    if (beat.last) {
        ++reads_served_;
        read_jobs_.pop_front();
    }
}

void Llc::serve_write() {
    if (write_jobs_.empty()) { return; }
    WriteJob& job = write_jobs_.front();
    if (job.ready_at == sim::kNoCycle) {
        const sim::Cycle init = std::max(job.accepted_at, next_init_at_);
        next_init_at_ = init + config_.request_interval;
        job.ready_at = init + config_.hit_latency;
    }
    if (now() < job.ready_at || !up_.has_w()) { return; }
    const axi::BurstDescriptor desc = job.aw.descriptor();
    const axi::Addr addr = axi::beat_address(desc, job.beats_seen);
    const std::uint64_t line = line_index(addr);
    const std::uint32_t set = set_of(line);
    const int way = find_way(set, tag_of(line));
    if (way < 0) {
        start_miss(addr); // write-allocate: fetch, then apply the beat
        return;
    }
    ++hits_;
    WayState& ws = tags_[std::size_t{set} * config_.ways + static_cast<std::uint32_t>(way)];
    const axi::WFlit beat = up_.recv_w();
    const std::size_t offset = static_cast<std::size_t>(addr % config_.line_bytes);
    std::uint8_t* dst = line_data(set, static_cast<std::uint32_t>(way)) + offset;
    for (std::uint32_t i = 0; i < desc.beat_bytes(); ++i) {
        if ((beat.strb >> (i % 64U)) & 1U) { dst[i] = beat.data.bytes[i]; }
    }
    ws.dirty = true;
    ws.last_use = ++use_tick_;
    ++job.beats_seen;
    if (job.beats_seen == desc.beats()) {
        REALM_ENSURES(beat.last, name() + ": W burst longer than AWLEN");
        b_queue_.push_back(PendingB{job.aw.id, now() + config_.hit_latency});
        write_jobs_.pop_front();
    } else {
        REALM_ENSURES(!beat.last, name() + ": premature WLAST");
    }
}

void Llc::send_b() {
    if (b_queue_.empty() || !up_.can_send_b()) { return; }
    const PendingB& pb = b_queue_.front();
    if (now() < pb.ready_at) { return; }
    axi::BFlit b;
    b.id = pb.id;
    b.resp = axi::Resp::kOkay;
    up_.send_b(b);
    b_queue_.pop_front();
    ++writes_served_;
}

void Llc::tick() {
    accept_requests();
    advance_miss_engine();
    if (miss_state_ == MissState::kIdle) {
        serve_read();
        serve_write();
    }
    send_b();
    update_activity();
}

void Llc::update_activity() {
    // Request flits upstream or response flits from DRAM demand evaluation,
    // and the miss engine holds output toward DRAM while mid-flight.
    if (!up_.channel().requests_empty() || !down_.channel().responses_empty() ||
        miss_state_ != MissState::kIdle) {
        return;
    }
    sim::Cycle next = sim::kNoCycle;
    if (!read_jobs_.empty()) {
        const ReadJob& job = read_jobs_.front();
        // Not yet initiated, streaming, or backpressured on R: stay awake.
        if (job.first_beat_at == sim::kNoCycle || now() >= job.first_beat_at) { return; }
        next = std::min(next, job.first_beat_at);
    }
    if (!write_jobs_.empty()) {
        const WriteJob& job = write_jobs_.front();
        if (job.ready_at == sim::kNoCycle) { return; } // initiation pending
        // Once ready, progress needs a W beat; the W link push wakes us.
        if (now() < job.ready_at) { next = std::min(next, job.ready_at); }
    }
    if (!b_queue_.empty()) {
        const PendingB& pb = b_queue_.front();
        if (now() >= pb.ready_at) { return; } // sendable (or backpressured on B)
        next = std::min(next, pb.ready_at);
    }
    idle_until(next);
}

} // namespace realm::mem
