#include "ic/mux.hpp"

#include "sim/check.hpp"

#include <utility>

namespace realm::ic {

AxiMux::AxiMux(sim::SimContext& ctx, std::string name, std::vector<axi::AxiChannel*> upstreams,
               axi::AxiChannel& downstream)
    : Component{ctx, std::move(name)},
      ups_{std::move(upstreams)},
      down_{downstream},
      aw_arb_{static_cast<std::uint32_t>(ups_.size())},
      ar_arb_{static_cast<std::uint32_t>(ups_.size())},
      aw_grant_count_(ups_.size(), 0),
      ar_grant_count_(ups_.size(), 0) {
    REALM_EXPECTS(!ups_.empty(), "mux needs at least one manager");
    for (axi::AxiChannel* ch : ups_) {
        REALM_EXPECTS(ch != nullptr, "null upstream channel");
        ch->wake_subordinate_on_request(*this);
    }
    downstream.wake_manager_on_response(*this);
}

void AxiMux::reset() {
    aw_arb_.reset();
    ar_arb_.reset();
    w_order_.clear();
    std::fill(aw_grant_count_.begin(), aw_grant_count_.end(), 0);
    std::fill(ar_grant_count_.begin(), ar_grant_count_.end(), 0);
    w_stall_cycles_ = 0;
}

void AxiMux::arbitrate_aw() {
    if (!down_.can_send_aw()) { return; }
    const int winner =
        aw_arb_.pick([this](std::uint32_t i) { return ups_[i]->aw.can_pop(); });
    if (winner < 0) { return; }
    const auto mgr = static_cast<std::uint32_t>(winner);
    aw_arb_.commit(mgr);
    axi::AwFlit f = ups_[mgr]->aw.pop();
    // Reserve the downstream W channel for this burst *now* — before any
    // data exists. This is the behaviour [14] identifies as the DoS vector.
    w_order_.push_back(WGrant{mgr, f.beats()});
    f.id = f.id * num_managers() + mgr;
    down_.send_aw(f);
    ++aw_grant_count_[mgr];
}

void AxiMux::forward_w() {
    if (w_order_.empty()) { return; }
    WGrant& grant = w_order_.front();
    if (!down_.can_send_w()) { return; }
    if (!ups_[grant.mgr]->w.can_pop()) {
        // Granted manager withholds data: the W channel idles even if other
        // managers have beats ready (bandwidth stolen by reservation).
        bool others_waiting = false;
        for (std::size_t i = 0; i < ups_.size(); ++i) {
            if (i != grant.mgr && ups_[i]->w.can_pop()) { others_waiting = true; }
        }
        if (others_waiting) { ++w_stall_cycles_; }
        return;
    }
    axi::WFlit f = ups_[grant.mgr]->w.pop();
    down_.send_w(f);
    --grant.beats_left;
    if (grant.beats_left == 0) {
        REALM_ENSURES(f.last, name() + ": W burst finished without WLAST");
        w_order_.pop_front();
    } else {
        REALM_ENSURES(!f.last, name() + ": premature WLAST through mux");
    }
}

void AxiMux::arbitrate_ar() {
    if (!down_.can_send_ar()) { return; }
    const int winner =
        ar_arb_.pick([this](std::uint32_t i) { return ups_[i]->ar.can_pop(); });
    if (winner < 0) { return; }
    const auto mgr = static_cast<std::uint32_t>(winner);
    ar_arb_.commit(mgr);
    axi::ArFlit f = ups_[mgr]->ar.pop();
    f.id = f.id * num_managers() + mgr;
    down_.send_ar(f);
    ++ar_grant_count_[mgr];
}

void AxiMux::route_b() {
    if (!down_.has_b()) { return; }
    const std::uint32_t mgr = down_.peek_b().id % num_managers();
    if (!ups_[mgr]->b.can_push()) { return; }
    axi::BFlit f = down_.recv_b();
    f.id /= num_managers();
    ups_[mgr]->b.push(f);
}

void AxiMux::route_r() {
    if (!down_.has_r()) { return; }
    const std::uint32_t mgr = down_.peek_r().id % num_managers();
    if (!ups_[mgr]->r.can_push()) { return; }
    axi::RFlit f = down_.recv_r();
    f.id /= num_managers();
    ups_[mgr]->r.push(f);
}

void AxiMux::tick() {
    arbitrate_aw();
    forward_w();
    arbitrate_ar();
    route_b();
    route_r();
    update_activity();
}

void AxiMux::update_activity() {
    // Same reasoning as the crossbar: with no request flit on any upstream
    // and no response on the downstream, every datapath is a no-op. A
    // granted-but-dataless write reservation (`w_order_` non-empty) only
    // progresses on a W push, and `w_stall_cycles_` needs another manager's
    // non-empty W link — both wake us via the push hooks.
    for (const axi::AxiChannel* ch : ups_) {
        if (!ch->requests_empty()) { return; }
    }
    if (!down_.channel().responses_empty()) { return; }
    idle_forever();
}

} // namespace realm::ic
