/// Tests for the report-to-report regression differ: label-keyed JSON
/// loading and `diff_against_baseline` semantics (threshold + slack, new
/// points, timeout/boot health regressions) — the machinery behind
/// `scenario_sweep --diff BASELINE.json`.
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace realm::scenario {
namespace {

ScenarioResult cell(std::string label, std::uint64_t load_max,
                    std::uint64_t store_max) {
    ScenarioResult r;
    r.label = std::move(label);
    r.load_lat_max = load_max;
    r.store_lat_max = store_max;
    r.run_cycles = 1000;
    r.ops = 64;
    return r;
}

/// Writes a baseline dump with the given results and returns its path.
/// The sweep needs matching points so `write_json` emits config hashes
/// (the point-line marker both loaders key on).
std::string write_baseline(const std::vector<ScenarioResult>& results,
                           const char* path) {
    Sweep sweep;
    sweep.name = "diff-fixture";
    for (const ScenarioResult& r : results) {
        sweep.points.push_back({r.label, ScenarioConfig{}});
    }
    EXPECT_TRUE(write_json_file(path, sweep, results));
    return path;
}

class DiffFixture : public ::testing::Test {
protected:
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_ = "diff_baseline_test.json";
};

TEST_F(DiffFixture, LoadByLabelRoundTrips) {
    write_baseline({cell("1atk/hog/none", 500, 20), cell("1atk/hog/budget", 30, 40)},
                   path_.c_str());
    const auto map = load_json_results_by_label(path_);
    ASSERT_EQ(map.size(), 2U);
    EXPECT_EQ(map.at("1atk/hog/none").load_lat_max, 500U);
    EXPECT_EQ(map.at("1atk/hog/budget").store_lat_max, 40U);
    EXPECT_TRUE(load_json_results_by_label("does_not_exist.json").empty());
}

TEST_F(DiffFixture, CleanRunPasses) {
    write_baseline({cell("a", 500, 20), cell("b", 30, 40)}, path_.c_str());
    const DiffReport diff = diff_against_baseline(
        path_, {cell("a", 500, 20), cell("b", 30, 40)}, 0.10, 50);
    EXPECT_TRUE(diff.ok());
    EXPECT_EQ(diff.compared, 2U);
    EXPECT_EQ(diff.regressions, 0U);
}

TEST_F(DiffFixture, LatencyGrowthPastThresholdAndSlackRegresses) {
    write_baseline({cell("a", 1000, 20)}, path_.c_str());
    // +5% with 10% threshold: fine.
    EXPECT_TRUE(diff_against_baseline(path_, {cell("a", 1050, 20)}, 0.10, 50).ok());
    // +20% and +200 cycles: regression.
    const DiffReport bad =
        diff_against_baseline(path_, {cell("a", 1200, 20)}, 0.10, 50);
    EXPECT_FALSE(bad.ok());
    ASSERT_EQ(bad.entries.size(), 1U);
    EXPECT_TRUE(bad.entries[0].regressed);
    EXPECT_EQ(bad.entries[0].baseline_worst, 1000U);
    EXPECT_EQ(bad.entries[0].current_worst, 1200U);
}

TEST_F(DiffFixture, AbsoluteSlackShieldsTinyCells) {
    // 4 -> 12 cycles is +200% but only 8 cycles: the slack keeps
    // single-digit-latency cells from tripping on jitter.
    write_baseline({cell("tiny", 4, 2)}, path_.c_str());
    EXPECT_TRUE(diff_against_baseline(path_, {cell("tiny", 12, 2)}, 0.10, 50).ok());
    EXPECT_FALSE(diff_against_baseline(path_, {cell("tiny", 80, 2)}, 0.10, 50).ok());
}

TEST_F(DiffFixture, WorstCaseIncludesStores) {
    // The wstall damage lands on the store path; the differ must gate on
    // max(load, store) like the matrix cells do.
    write_baseline({cell("w", 90, 700)}, path_.c_str());
    EXPECT_FALSE(diff_against_baseline(path_, {cell("w", 90, 1400)}, 0.10, 50).ok());
}

TEST_F(DiffFixture, NewPointsAreInformationalNotRegressions) {
    write_baseline({cell("a", 500, 20)}, path_.c_str());
    const DiffReport diff = diff_against_baseline(
        path_, {cell("a", 500, 20), cell("brand-new", 9999, 0)}, 0.10, 50);
    EXPECT_TRUE(diff.ok());
    EXPECT_EQ(diff.compared, 1U);
    ASSERT_EQ(diff.entries.size(), 2U);
    EXPECT_TRUE(diff.entries[1].missing_in_baseline);
    EXPECT_FALSE(diff.entries[1].regressed);
}

TEST_F(DiffFixture, HealthRegressionsTripRegardlessOfLatency) {
    write_baseline({cell("a", 500, 20)}, path_.c_str());
    ScenarioResult timed_out = cell("a", 10, 10); // "faster", but dead
    timed_out.timed_out = true;
    EXPECT_FALSE(diff_against_baseline(path_, {timed_out}, 0.10, 50).ok());
    ScenarioResult boot_fail = cell("a", 10, 10);
    boot_fail.boot_ok = false;
    EXPECT_FALSE(diff_against_baseline(path_, {boot_fail}, 0.10, 50).ok());
}

TEST_F(DiffFixture, EmptyBaselineComparesNothing) {
    const DiffReport diff = diff_against_baseline(
        "does_not_exist.json", {cell("a", 500, 20)}, 0.10, 50);
    EXPECT_EQ(diff.compared, 0U);
    EXPECT_TRUE(diff.ok()) << "no regressions, but callers must check compared";
}

TEST_F(DiffFixture, SelfDiffOfARealSweepDumpIsClean) {
    // End-to-end: run a real (tiny) sweep, dump it, diff the same results
    // against the dump — the CI self-gate pattern.
    Sweep sweep = make_sweep("ring-credit-dos-smoke");
    sweep.points.resize(2);
    for (SweepPoint& p : sweep.points) { p.config.victim.stream.repeat = 1; }
    const auto results = ScenarioRunner{RunnerOptions{.threads = 2}}.run(sweep);
    ASSERT_TRUE(write_json_file(path_, sweep, results));
    const DiffReport diff = diff_against_baseline(path_, results, 0.0, 0);
    EXPECT_EQ(diff.compared, 2U);
    EXPECT_TRUE(diff.ok());
}

} // namespace
} // namespace realm::scenario
