/// Tests for the credited NoC transport (noc/credit.hpp): wormhole link
/// serialization and VC bounds, end-to-end credit pools, whole-fabric
/// credit conservation asserted every cycle under the worst DoS-matrix
/// cell, flow-control config hashing/resume (credited vs provisioned must
/// never alias), and scheduler equivalence under deliberately tight
/// credits.
#include "noc/credit.hpp"
#include "noc/mesh.hpp"
#include "noc/ring.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/topology.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

namespace realm::noc {
namespace {

using scenario::ScenarioConfig;
using scenario::ScenarioResult;
using scenario::Sweep;
using scenario::SweepPoint;
using scenario::TopologyKind;

// --- CreditPool --------------------------------------------------------------

TEST(CreditPool, TakeReleaseConservation) {
    CreditPool pool{8};
    EXPECT_EQ(pool.available(), 8U);
    EXPECT_EQ(pool.in_flight(), 0U);
    pool.check_conserved();

    EXPECT_TRUE(pool.can_take(8));
    EXPECT_FALSE(pool.can_take(9));
    pool.take(5);
    EXPECT_EQ(pool.available(), 3U);
    EXPECT_EQ(pool.in_flight(), 5U);
    pool.check_conserved();

    pool.release(2);
    EXPECT_EQ(pool.available(), 5U);
    EXPECT_EQ(pool.in_flight(), 3U);
    pool.check_conserved();

    pool.release(3);
    EXPECT_EQ(pool.available(), 8U);
    pool.check_conserved();
}

TEST(CreditPool, OverTakeAndOverReleaseAreContractViolations) {
    CreditPool pool{4};
    EXPECT_THROW(pool.take(5), sim::ContractViolation);
    pool.take(4);
    EXPECT_THROW(pool.release(5), sim::ContractViolation);
}

TEST(NocFlowConfig, ValidationRejectsUnderSizedBuffers) {
    NocFlowConfig fc;
    fc.vc_depth = fc.flits_per_packet - 1; // cannot hold one worm
    EXPECT_THROW(fc.validate(), sim::ContractViolation);
    fc = NocFlowConfig{};
    fc.e2e_credits = fc.flits_per_packet; // AW header would starve its data
    EXPECT_THROW(fc.validate(), sim::ContractViolation);
    fc = NocFlowConfig{};
    fc.flits_per_packet = 256; // would truncate NocPacket::flits (8-bit)
    fc.vc_depth = 512;
    fc.e2e_credits = 1024;
    EXPECT_THROW(fc.validate(), sim::ContractViolation);
    // Provisioned mode ignores the credited knobs entirely.
    fc.mode = FlowControl::kProvisioned;
    EXPECT_NO_THROW(fc.validate());
}

// --- NocLink -----------------------------------------------------------------

NocPacket worm_of(std::uint32_t flits) {
    NocPacket pkt;
    pkt.flits = static_cast<std::uint8_t>(flits);
    pkt.flit = axi::RFlit{};
    return pkt;
}

TEST(NocLink, WormSerializesOneFlitPerCycle) {
    sim::SimContext ctx;
    NocFlowConfig fc; // credited, 4 flits per worm, vc_depth 8
    NocLink link{ctx, "l", fc};

    ASSERT_TRUE(link.can_push(4));
    link.push(worm_of(4));
    // The channel is busy until the tail flit leaves, 4 cycles later —
    // even though the VC still has 4 free flit slots.
    EXPECT_FALSE(link.can_push(1));
    for (int c = 0; c < 3; ++c) {
        ctx.step();
        EXPECT_FALSE(link.can_push(1)) << "cycle " << c;
    }
    ctx.step();
    EXPECT_TRUE(link.can_push(4));
    // Header latency is still one cycle: the packet was poppable long
    // before the serialization window closed (wormhole, not
    // store-and-forward).
    EXPECT_TRUE(link.can_pop());
}

TEST(NocLink, VcOccupancyIsBoundedAndAsserted) {
    sim::SimContext ctx;
    NocFlowConfig fc;
    fc.vc_depth = 8;
    NocLink link{ctx, "l", fc};

    link.push(worm_of(4));
    for (int c = 0; c < 4; ++c) { ctx.step(); }
    link.push(worm_of(4)); // 8 flits buffered: at the bound
    EXPECT_EQ(link.buffered_flits(), 8U);
    for (int c = 0; c < 4; ++c) { ctx.step(); }
    EXPECT_FALSE(link.can_push(1)) << "VC full: no free flit slot";
    EXPECT_NO_THROW(link.check_bounded());
    // Draining one worm frees its flits.
    (void)link.pop();
    EXPECT_EQ(link.buffered_flits(), 4U);
    EXPECT_TRUE(link.can_push(4));
    EXPECT_EQ(link.peak_buffered_flits(), 8U);
}

TEST(NocLink, ProvisionedModeKeepsLegacyDepthTwoBehavior) {
    sim::SimContext ctx;
    NocFlowConfig fc;
    fc.mode = FlowControl::kProvisioned;
    NocLink link{ctx, "l", fc};
    // Two pushes in the same cycle (the legacy spill register): no
    // serialization window, capacity 2.
    link.push(worm_of(1));
    ASSERT_TRUE(link.can_push(1));
    link.push(worm_of(1));
    EXPECT_FALSE(link.can_push(1));
}

// --- Whole-fabric conservation under the worst DoS cell ----------------------

/// Returns the config of the named cell of a registered sweep.
ScenarioConfig cell_config(const std::string& sweep_name, const std::string& label) {
    Sweep sweep = scenario::make_sweep(sweep_name);
    for (const SweepPoint& p : sweep.points) {
        if (p.label == label) { return p.config; }
    }
    ADD_FAILURE() << sweep_name << " has no cell " << label;
    return {};
}

/// Drives one NoC scenario config by hand — fabric via `make_topology`,
/// interference DMAs and the stream victim attached like `run_scenario`
/// does — so the test can step cycle by cycle and assert the fabric's
/// flow-control invariants at *every* cycle, not just sample them.
void step_and_check_invariants(const ScenarioConfig& cfg, sim::Cycle cycles) {
    sim::SimContext ctx;
    auto topo = scenario::make_topology(ctx, cfg);
    std::vector<std::unique_ptr<traffic::DmaEngine>> dmas;
    for (std::size_t i = 0; i < cfg.interference.size(); ++i) {
        const scenario::InterferenceConfig& irq = cfg.interference[i];
        dmas.push_back(std::make_unique<traffic::DmaEngine>(
            ctx, "atk" + std::to_string(i), topo->interference_port(i), irq.dma));
        dmas.back()->push_job(traffic::DmaJob{irq.src, irq.dst, irq.bytes, irq.loop});
    }
    traffic::StreamWorkload victim{cfg.victim.stream};
    traffic::CoreModel core{ctx, "victim", topo->victim_port(), victim};
    for (sim::Cycle c = 0; c < cycles; ++c) {
        ctx.step();
        ASSERT_NO_THROW(topo->check_flow_invariants()) << "cycle " << ctx.now();
    }
    EXPECT_GT(topo->fabric_hops(), 0U) << "traffic must actually cross the fabric";
}

TEST(CreditConservation, HoldsEveryCycleUnderTheWorstMeshDosCell) {
    // 9atk/wstall/none is the heaviest matrix cell: nine stalling writers,
    // no regulation, attackers' write buffers stripped. Total credits in
    // flight + held == configured pool, staged NI flits within the pool,
    // and every VC within vc_depth — asserted each of 15k cycles.
    step_and_check_invariants(cell_config("mesh-dos-matrix", "9atk/wstall/none"),
                              15000);
}

TEST(CreditConservation, HoldsEveryCycleOnTheTightCreditRing) {
    // The tight-credit smoke (vc_depth = one worm, e2e_credits = 8) keeps
    // the fabric permanently credit-limited — the regime where a release
    // miscount would surface fastest.
    step_and_check_invariants(cell_config("ring-credit-dos-smoke", "2atk/hog/none"),
                              15000);
}

// --- Credited vs provisioned: A/B and no-alias hashing -----------------------

TEST(FlowControlAb, BothTransportsCompleteTheSameCell) {
    ScenarioConfig cfg = cell_config("ring-dos-smoke", "2atk/hog/none");
    cfg.topology.ring.flow_control = FlowControl::kProvisioned;
    const ScenarioResult provisioned = run_scenario(cfg, "provisioned");
    cfg.topology.ring.flow_control = FlowControl::kCredited;
    const ScenarioResult credited = run_scenario(cfg, "credited");
    for (const ScenarioResult* r : {&provisioned, &credited}) {
        EXPECT_TRUE(r->boot_ok);
        EXPECT_FALSE(r->timed_out);
        EXPECT_GT(r->ops, 0U);
        EXPECT_GT(r->fabric_hops, 0U);
    }
    // Wormhole serialization makes contention strictly more expensive than
    // the infinitely-buffered legacy model hides.
    EXPECT_GE(credited.load_lat_max, provisioned.load_lat_max);
}

TEST(FlowControlHash, CreditedAndProvisionedNeverAlias) {
    const ScenarioConfig base = cell_config("ring-dos-smoke", "1atk/hog/none");
    ScenarioConfig c = base;
    c.topology.ring.flow_control = FlowControl::kProvisioned;
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
    c = base;
    c.topology.ring.flits_per_packet = 8;
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
    c = base;
    c.topology.ring.vc_depth = 16;
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
    c = base;
    c.topology.ring.e2e_credits = 64;
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
}

TEST(FlowControlResume, CreditedPointIsNeverServedFromAProvisionedDump) {
    // `--json PATH --resume` keys on config_hash (v3 mixes the
    // flow-control fields): a dump produced by the provisioned transport
    // must not satisfy the credited point, and vice versa — a resume alias
    // here would silently report legacy numbers as credited ones.
    const std::string path = "flow_ab_resume.json";
    Sweep provisioned;
    provisioned.name = "flow-ab";
    ScenarioConfig cfg = cell_config("ring-dos-smoke", "1atk/hog/budget");
    cfg.victim.stream.repeat = 1; // keep the test quick
    cfg.topology.ring.flow_control = FlowControl::kProvisioned;
    provisioned.points.push_back({"cell", cfg});

    const scenario::ScenarioRunner runner{scenario::RunnerOptions{.threads = 1}};
    ASSERT_TRUE(scenario::write_json_file(path, provisioned,
                                          runner.run(provisioned)));

    Sweep credited = provisioned;
    credited.points[0].config.topology.ring.flow_control = FlowControl::kCredited;
    std::size_t reused = ~std::size_t{0};
    (void)runner.run_resumed(credited, path, &reused);
    EXPECT_EQ(reused, 0U) << "credited point aliased a provisioned dump";

    // The matching transport *is* reused — resume still works.
    (void)runner.run_resumed(provisioned, path, &reused);
    EXPECT_EQ(reused, 1U);
    std::remove(path.c_str());
}

// --- Scheduler equivalence under tight credits -------------------------------

void expect_bit_identical(const ScenarioResult& naive, const ScenarioResult& fast) {
    ASSERT_FALSE(naive.timed_out);
    EXPECT_EQ(naive.run_cycles, fast.run_cycles);
    EXPECT_EQ(naive.ops, fast.ops);
    EXPECT_EQ(naive.load_lat_mean, fast.load_lat_mean);
    EXPECT_EQ(naive.load_lat_max, fast.load_lat_max);
    EXPECT_EQ(naive.load_lat_p99, fast.load_lat_p99);
    EXPECT_EQ(naive.store_lat_mean, fast.store_lat_mean);
    EXPECT_EQ(naive.store_lat_max, fast.store_lat_max);
    EXPECT_EQ(naive.dma_bytes, fast.dma_bytes);
    EXPECT_EQ(naive.xbar_w_stalls, fast.xbar_w_stalls);
    EXPECT_EQ(naive.fabric_hops, fast.fabric_hops);
    EXPECT_EQ(naive.simulated_cycles, fast.simulated_cycles);
    EXPECT_EQ(naive.ticks_skipped, 0U);
    EXPECT_GT(fast.ticks_skipped, 0U) << "idle components must be skipped";
}

TEST(CreditSchedulerEquivalence, TightCreditRingMatchesTickAllBitForBit) {
    // Credit waits and serialization windows must honour the idle/wake
    // contract too: a node waiting for credits holds a flit somewhere it
    // drains from and therefore never sleeps through the release.
    ScenarioConfig cfg = cell_config("ring-credit-dos-smoke", "1atk/wstall/none");
    cfg.scheduler = sim::Scheduler::kTickAll;
    const ScenarioResult naive = scenario::run_scenario(cfg);
    cfg.scheduler = sim::Scheduler::kActivity;
    const ScenarioResult fast = scenario::run_scenario(cfg);
    expect_bit_identical(naive, fast);
}

TEST(CreditSchedulerEquivalence, TightCreditMeshMatchesTickAllBitForBit) {
    ScenarioConfig cfg = cell_config("mesh-credit-dos-smoke", "2atk/hog/none");
    cfg.scheduler = sim::Scheduler::kTickAll;
    const ScenarioResult naive = scenario::run_scenario(cfg);
    cfg.scheduler = sim::Scheduler::kActivity;
    const ScenarioResult fast = scenario::run_scenario(cfg);
    expect_bit_identical(naive, fast);
}

} // namespace
} // namespace realm::noc
