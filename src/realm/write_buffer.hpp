/// \file
/// \brief Write transaction buffer (Figure 3b of the paper).
///
/// A manager that wins write arbitration but delays its data stalls the
/// interconnect's W channel (which is reserved at AW-grant time) — the
/// denial-of-service vector analysed in Cut&Forward [14]. This buffer
/// forwards a (fragmented) write burst's AW **only once all of its data is
/// buffered**, so downstream bandwidth is never reserved for data that may
/// not arrive.
///
/// Bursts longer than the buffer (possible when fragmentation is disabled
/// or configured above the depth) fall back to cut-through forwarding and
/// are counted — exactly the sizing constraint the paper states ("from one
/// to 256 beats if the write buffer is parametrized large enough").
#pragma once

#include "axi/burst.hpp"
#include "axi/flit.hpp"

#include <cstdint>
#include <deque>
#include <span>

namespace realm::rt {

class WriteBuffer {
public:
    /// \param depth_beats  W-beat storage capacity (16 in the paper's
    ///        Cheshire configuration).
    /// \param enabled      disabled = pure cut-through (ablation mode).
    explicit WriteBuffer(std::uint32_t depth_beats = 16, bool enabled = true);

    void reset();

    /// \name Upstream side
    ///@{
    /// Queues the child bursts of an accepted parent write.
    void queue_children(const axi::AwFlit& parent,
                        std::span<const axi::BurstDescriptor> children);
    /// True when one more W beat can be absorbed this cycle.
    [[nodiscard]] bool can_accept_beat() const noexcept;
    /// Absorbs one parent W beat (beats arrive in parent AW order; the
    /// buffer re-gates `last` at child boundaries).
    void accept_beat(const axi::WFlit& beat);
    ///@}

    /// \name Downstream side
    ///@{
    [[nodiscard]] bool has_aw_to_send() const noexcept;
    axi::AwFlit pop_aw();
    [[nodiscard]] bool has_w_to_send() const noexcept;
    axi::WFlit pop_w();
    ///@}

    /// \name Introspection
    ///@{
    [[nodiscard]] std::uint32_t buffered_beats() const noexcept { return buffered_unsent_; }
    [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }
    [[nodiscard]] std::uint64_t cut_through_bursts() const noexcept { return cut_through_; }
    [[nodiscard]] std::size_t pending_entries() const noexcept { return entries_.size(); }
    [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
    ///@}

private:
    struct Entry {
        axi::AwFlit aw;                 ///< child address flit, ready to emit
        std::uint32_t beats_total = 0;
        std::uint32_t beats_buffered = 0;
        std::uint32_t beats_sent = 0;
        bool aw_sent = false;
        bool cut_through = false;       ///< larger than the buffer: stream through
        bool parent_last = false;       ///< this child carries the parent's last beat
        std::deque<axi::WFlit> data;
    };

    /// First entry still missing beats (fill pointer).
    [[nodiscard]] Entry* fill_target() noexcept;

    std::uint32_t depth_;
    bool enabled_;
    std::deque<Entry> entries_;
    std::uint32_t buffered_unsent_ = 0;
    std::uint64_t cut_through_ = 0;
};

} // namespace realm::rt
