/// \file
/// \brief In-line AXI4 protocol checker.
///
/// A pass-through component placed between a manager-side and a
/// subordinate-side channel. It forwards at most one flit per channel per
/// cycle (full bus rate) and validates protocol rules on the fly. Used
/// throughout the test suite to prove that every block in this repository
/// emits legal AXI4 traffic. Idle-aware: a quiet hop costs nothing, so
/// checked scenarios fast-forward like bare ones.
#pragma once

#include "axi/channel.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace realm::axi {

/// Protocol rules checked:
///  - AW/AR burst legality (length, WRAP alignment, 4 KiB crossing, size);
///  - W beat count matches the corresponding AW (AW order), WLAST exactly on
///    the final beat, no W without a preceding AW (model convention);
///  - B only for an outstanding write of that ID, at most one per write;
///  - R beat count per AR of that ID, RLAST exactly on the final beat;
///  - no response channel activity for IDs that were never requested.
class AxiChecker : public sim::Component {
public:
    /// \param throw_on_violation  When true (default), a violation raises
    ///        `sim::ContractViolation`; otherwise it is recorded and the
    ///        flit is forwarded anyway (lets tests enumerate violations).
    AxiChecker(sim::SimContext& ctx, std::string name, AxiChannel& upstream,
               AxiChannel& downstream, bool throw_on_violation = true);

    void reset() override;
    void tick() override;

    [[nodiscard]] std::uint64_t violation_count() const noexcept { return violations_.size(); }
    [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
        return violations_;
    }
    /// Transactions fully completed (B received / last R received).
    [[nodiscard]] std::uint64_t completed_writes() const noexcept { return completed_writes_; }
    [[nodiscard]] std::uint64_t completed_reads() const noexcept { return completed_reads_; }

private:
    void violation(const std::string& message);
    void update_activity();
    void check_aw(const AwFlit& f);
    void check_w(const WFlit& f);
    void check_b(const BFlit& f);
    void check_ar(const ArFlit& f);
    void check_r(const RFlit& f);

    SubordinateView up_;
    ManagerView down_;
    bool throw_on_violation_;

    /// Write bursts whose W beats are still being counted, in AW order.
    struct PendingWrite {
        IdT id = 0;
        std::uint32_t beats_total = 0;
        std::uint32_t beats_seen = 0;
    };
    std::deque<PendingWrite> w_queue_;
    /// Writes with all data sent, awaiting B, per ID.
    std::unordered_map<IdT, std::uint32_t> awaiting_b_;
    /// Outstanding read-beat counts, per ID, in AR order.
    std::unordered_map<IdT, std::deque<std::uint32_t>> r_remaining_;

    std::vector<std::string> violations_;
    std::uint64_t completed_writes_ = 0;
    std::uint64_t completed_reads_ = 0;
};

} // namespace realm::axi
