#include "mem/error_slave.hpp"

namespace realm::mem {

ErrorSlave::ErrorSlave(sim::SimContext& ctx, std::string name, axi::AxiChannel& channel)
    : Component{ctx, std::move(name)}, port_{channel} {
    channel.wake_subordinate_on_request(*this);
}

void ErrorSlave::reset() {
    writes_.clear();
    reads_.clear();
    errors_ = 0;
}

void ErrorSlave::tick() {
    if (port_.has_aw()) {
        const axi::AwFlit aw = port_.recv_aw();
        writes_.push_back(PendingWrite{aw.id, aw.beats()});
    }
    if (port_.has_ar()) {
        const axi::ArFlit ar = port_.recv_ar();
        reads_.push_back(PendingRead{ar.id, ar.beats()});
    }
    // Swallow write data; respond once the burst is complete.
    if (!writes_.empty() && writes_.front().beats_left > 0 && port_.has_w()) {
        const axi::WFlit w = port_.recv_w();
        PendingWrite& pw = writes_.front();
        --pw.beats_left;
        if (pw.beats_left == 0 || w.last) { pw.beats_left = 0; }
    }
    if (!writes_.empty() && writes_.front().beats_left == 0 && port_.can_send_b()) {
        axi::BFlit b;
        b.id = writes_.front().id;
        b.resp = axi::Resp::kDecErr;
        port_.send_b(b);
        writes_.pop_front();
        ++errors_;
    }
    if (!reads_.empty() && port_.can_send_r()) {
        PendingRead& pr = reads_.front();
        axi::RFlit r;
        r.id = pr.id;
        r.resp = axi::Resp::kDecErr;
        --pr.beats_left;
        r.last = pr.beats_left == 0;
        port_.send_r(r);
        if (r.last) {
            reads_.pop_front();
            ++errors_;
        }
    }
    // Sleep unless progress is possible without a new request flit: an R
    // stream in flight or a completed write awaiting its B slot keeps us
    // awake; a write burst waiting for W data is woken by the W push.
    const bool b_pending = !writes_.empty() && writes_.front().beats_left == 0;
    if (reads_.empty() && !b_pending && port_.channel().requests_empty()) {
        idle_forever();
    }
}

} // namespace realm::mem
