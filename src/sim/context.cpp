#include "sim/context.hpp"

#include "sim/check.hpp"
#include "sim/component.hpp"

#include <algorithm>
#include <iostream>

namespace realm::sim {

void SimContext::register_component(Component& c) {
    components_.push_back(&c);
    next_active_hint_ = 0; // a newly built component is active immediately
}

void SimContext::unregister_component(Component& c) noexcept {
    const auto it = std::find(components_.begin(), components_.end(), &c);
    if (it != components_.end()) { components_.erase(it); }
}

void SimContext::reset() {
    now_ = 0;
    next_active_hint_ = 0;
    ticks_executed_ = 0;
    ticks_skipped_ = 0;
    fast_forwarded_ = 0;
    for (Component* c : components_) {
        c->wake(0); // forget idle declarations made against the old timeline
        c->reset();
    }
}

void SimContext::step() {
    if (scheduler_ == Scheduler::kTickAll) {
        for (Component* c : components_) { c->tick(); }
        ticks_executed_ += components_.size();
        ++now_;
        return;
    }
    // Rebuild the fast-forward hint while walking the list anyway. Wakes
    // fired *during* a tick (link pushes, job submissions) re-lower the
    // hint through note_wake, so components earlier in the order that were
    // already passed over this cycle are still picked up next cycle.
    next_active_hint_ = kNoCycle;
    for (Component* c : components_) {
        const Cycle wake = c->wake_cycle();
        if (wake > now_) {
            ++ticks_skipped_;
            next_active_hint_ = std::min(next_active_hint_, wake);
            continue;
        }
        c->tick();
        ++ticks_executed_;
        const Cycle after = c->wake_cycle();
        next_active_hint_ = std::min(next_active_hint_, after > now_ ? after : now_ + 1);
    }
    ++now_;
}

bool SimContext::try_fast_forward(Cycle limit) {
    if (scheduler_ != Scheduler::kActivity) { return false; }
    if (next_active_hint_ <= now_) { return false; } // someone may need this cycle
    const Cycle target = std::min(next_active_hint_, limit);
    if (target <= now_) { return false; }
    fast_forwarded_ += target - now_;
    now_ = target;
    return true;
}

void SimContext::run(Cycle cycles) {
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        if (try_fast_forward(end)) { continue; }
        step();
    }
}

bool SimContext::run_until(const std::function<bool()>& done, Cycle max_cycles) {
    REALM_EXPECTS(done != nullptr, "run_until requires a predicate");
    const Cycle end = now_ + max_cycles;
    while (now_ < end) {
        if (done()) { return true; }
        if (try_fast_forward(end)) { continue; }
        step();
    }
    return done();
}

namespace {
const char* level_name(LogLevel level) {
    switch (level) {
    case LogLevel::kNone: return "none";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
    }
    return "?";
}
} // namespace

void SimContext::log(LogLevel level, const std::string& who, const std::string& message) const {
    if (!log_enabled(level)) { return; }
    std::cerr << '[' << now_ << "] " << level_name(level) << ' ' << who << ": " << message
              << '\n';
}

} // namespace realm::sim
