#include "traffic/susan.hpp"

#include "sim/check.hpp"
#include "sim/rng.hpp"

#include <cmath>
#include <cstdlib>

namespace realm::traffic {

namespace {

/// Direct-mapped filter cache deciding which loads reach the interconnect.
class FilterCache {
public:
    FilterCache(std::uint32_t bytes, std::uint32_t line_bytes)
        : line_bytes_{line_bytes}, tags_(bytes / line_bytes, ~std::uint64_t{0}) {
        REALM_EXPECTS(!tags_.empty(), "filter cache must hold at least one line");
    }

    /// Returns true on hit; installs the line on miss.
    bool access(axi::Addr addr) {
        const std::uint64_t line = addr / line_bytes_;
        const std::size_t set = static_cast<std::size_t>(line % tags_.size());
        if (tags_[set] == line) { return true; }
        tags_[set] = line;
        return false;
    }

    [[nodiscard]] std::uint32_t line_bytes() const noexcept { return line_bytes_; }

private:
    std::uint32_t line_bytes_;
    std::vector<std::uint64_t> tags_;
};

/// Brightness LUT of the Susan kernel: bp[d] ~ 100 * exp(-(d/t)^2) for a
/// brightness difference d.
std::vector<std::uint16_t> make_brightness_lut(std::uint8_t threshold) {
    std::vector<std::uint16_t> lut(256);
    const double t = static_cast<double>(threshold);
    for (std::size_t d = 0; d < lut.size(); ++d) {
        const double x = static_cast<double>(d) / t;
        lut[d] = static_cast<std::uint16_t>(std::llround(100.0 * std::exp(-x * x)));
    }
    return lut;
}

/// Spatial Gaussian mask ~ 100 * exp(-(i^2+j^2) / (2 sigma^2)).
std::vector<std::uint16_t> make_spatial_lut(std::uint32_t radius) {
    const std::uint32_t d = 2 * radius + 1;
    std::vector<std::uint16_t> lut(std::size_t{d} * d);
    const double sigma = static_cast<double>(radius) * 0.7 + 0.3;
    for (std::uint32_t j = 0; j < d; ++j) {
        for (std::uint32_t i = 0; i < d; ++i) {
            const double dx = static_cast<double>(i) - radius;
            const double dy = static_cast<double>(j) - radius;
            const double w = 100.0 * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
            lut[std::size_t{j} * d + i] = static_cast<std::uint16_t>(std::llround(w));
        }
    }
    return lut;
}

} // namespace

std::vector<std::uint8_t> SusanTraceGenerator::make_image(std::uint32_t width,
                                                          std::uint32_t height,
                                                          std::uint64_t seed) {
    std::vector<std::uint8_t> image(std::size_t{width} * height);
    sim::Rng rng{seed};
    for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            // Diagonal gradient.
            std::uint32_t v = (x * 160 / width + y * 64 / height) & 0xFF;
            // Two bright rectangles provide edges the smoother must respect.
            if (x > width / 5 && x < width / 2 && y > height / 4 && y < height / 2) {
                v = 220;
            }
            if (x > 2 * width / 3 && y > 2 * height / 3) { v = 30; }
            // +- 8 grey levels of noise.
            v = (v + rng.uniform(0, 16)) & 0xFF;
            image[std::size_t{y} * width + x] = static_cast<std::uint8_t>(v);
        }
    }
    return image;
}

std::vector<std::uint8_t> SusanTraceGenerator::smooth_reference(
    const std::vector<std::uint8_t>& image, std::uint32_t width, std::uint32_t height,
    std::uint32_t radius, std::uint8_t threshold) {
    REALM_EXPECTS(image.size() == std::size_t{width} * height, "image size mismatch");
    const auto bp = make_brightness_lut(threshold);
    const auto dp = make_spatial_lut(radius);
    const std::uint32_t d = 2 * radius + 1;
    std::vector<std::uint8_t> out = image; // borders stay unsmoothed

    for (std::uint32_t y = radius; y + radius < height; ++y) {
        for (std::uint32_t x = radius; x + radius < width; ++x) {
            const std::uint8_t center = image[std::size_t{y} * width + x];
            std::uint64_t area = 0;
            std::uint64_t total = 0;
            for (std::uint32_t j = 0; j < d; ++j) {
                for (std::uint32_t i = 0; i < d; ++i) {
                    const std::uint32_t px = x + i - radius;
                    const std::uint32_t py = y + j - radius;
                    const std::uint8_t v = image[std::size_t{py} * width + px];
                    const std::uint32_t diff =
                        static_cast<std::uint32_t>(std::abs(int{v} - int{center}));
                    const std::uint64_t w = std::uint64_t{dp[std::size_t{j} * d + i]} * bp[diff];
                    area += w;
                    total += w * v;
                }
            }
            // Exclude the center's self-contribution (as the original does).
            const std::uint64_t center_w = std::uint64_t{dp[(std::size_t{radius}) * d + radius]} *
                                           bp[0];
            const std::uint64_t denom = area - center_w;
            if (denom == 0) {
                out[std::size_t{y} * width + x] = center;
            } else {
                out[std::size_t{y} * width + x] = static_cast<std::uint8_t>(
                    (total - center_w * center + denom / 2) / denom);
            }
        }
    }
    return out;
}

SusanTraceGenerator::SusanTraceGenerator(SusanConfig config) : cfg_{config} {
    REALM_EXPECTS(cfg_.width > 2 * cfg_.mask_radius && cfg_.height > 2 * cfg_.mask_radius,
                  "image smaller than the smoothing window");
    input_ = make_image(cfg_.width, cfg_.height, cfg_.image_seed);
    run_kernel();
}

void SusanTraceGenerator::run_kernel() {
    const auto bp = make_brightness_lut(cfg_.threshold);
    const auto dp = make_spatial_lut(cfg_.mask_radius);
    const std::uint32_t r = cfg_.mask_radius;
    const std::uint32_t d = 2 * r + 1;
    const std::uint32_t w = cfg_.width;
    output_ = input_;

    FilterCache l1{cfg_.filter_cache_bytes, cfg_.filter_line_bytes};
    std::uint64_t compute_q = 0; ///< accumulated quarter cycles since last op
    std::uint64_t pending_store_word = ~std::uint64_t{0};

    const auto emit = [&](MemOp::Kind kind, axi::Addr addr, std::uint32_t bytes) {
        if (cfg_.max_ops != 0 && ops_.size() >= cfg_.max_ops) { return; }
        MemOp op;
        op.kind = kind;
        op.addr = addr;
        op.bytes = bytes;
        op.compute_cycles = static_cast<std::uint32_t>(compute_q / 4);
        compute_q %= 4;
        ops_.push_back(op);
        (kind == MemOp::Kind::kLoad ? emitted_loads_ : emitted_stores_) += 1;
    };

    const auto load = [&](axi::Addr addr) {
        if (l1.access(addr)) {
            ++filtered_loads_;
            compute_q += cfg_.filtered_load_quarter_cycles;
        } else {
            emit(MemOp::Kind::kLoad, addr & ~axi::Addr{7}, 8);
        }
    };

    for (std::uint32_t y = r; y + r < cfg_.height; ++y) {
        for (std::uint32_t x = r; x + r < w; ++x) {
            const std::size_t center_idx = std::size_t{y} * w + x;
            const std::uint8_t center = input_[center_idx];
            load(cfg_.image_base + center_idx);
            std::uint64_t area = 0;
            std::uint64_t total = 0;
            for (std::uint32_t j = 0; j < d; ++j) {
                for (std::uint32_t i = 0; i < d; ++i) {
                    const std::size_t idx = std::size_t{y + j - r} * w + (x + i - r);
                    const std::uint8_t v = input_[idx];
                    load(cfg_.image_base + idx);
                    const std::uint32_t diff =
                        static_cast<std::uint32_t>(std::abs(int{v} - int{center}));
                    load(cfg_.lut_base + diff * 2); // brightness LUT (16-bit entries)
                    const std::uint64_t weight =
                        std::uint64_t{dp[std::size_t{j} * d + i]} * bp[diff];
                    area += weight;
                    total += weight * v;
                    ++taps_;
                    compute_q += cfg_.compute_quarter_cycles_per_tap;
                }
            }
            const std::uint64_t center_w =
                std::uint64_t{dp[(std::size_t{r}) * d + r]} * bp[0];
            const std::uint64_t denom = area - center_w;
            output_[center_idx] =
                denom == 0 ? center
                           : static_cast<std::uint8_t>((total - center_w * center + denom / 2) /
                                                       denom);
            // Write-through store, merged to bus words by the store buffer.
            const axi::Addr word = (cfg_.out_base + center_idx) & ~axi::Addr{7};
            if (word != pending_store_word) {
                if (pending_store_word != ~std::uint64_t{0}) {
                    emit(MemOp::Kind::kStore, pending_store_word, 8);
                }
                pending_store_word = word;
            }
            compute_q += 2; // normalization division etc.
        }
    }
    if (pending_store_word != ~std::uint64_t{0}) {
        emit(MemOp::Kind::kStore, pending_store_word, 8);
    }
}

TraceWorkload make_susan_workload(const SusanConfig& config) {
    SusanTraceGenerator gen{config};
    return TraceWorkload{gen.take_ops()};
}

} // namespace realm::traffic
