/// \file
/// \brief Baseline comparison (Section II related work): AxQOS strict
///        priority (CoreLink QoS-400 / AXI-ICRT style) vs AXI-REALM's
///        credit-based regulation.
///
/// The paper: "AXI-REALM does not introduce the concept of priority, which
/// may lead to request starvation on low-priority managers. It relies on a
/// credit-based mechanism and a granular burst splitter to distribute the
/// bandwidth according to the real-time guarantee of the SoC."
///
/// Scenario: an aggressive high-priority DMA saturates the LLC with short
/// bursts while a low-priority core tries to run. Under QoS arbitration the
/// core starves whenever demand exceeds capacity; under REALM the same DMA
/// is fragmented and budgeted, so the core keeps a hard bandwidth/latency
/// guarantee *and* the DMA gets the rest.
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"

#include <cstdio>

namespace {

using namespace realm;
constexpr axi::Addr kDram = 0x8000'0000;
constexpr axi::Addr kSpm = 0x7000'0000;

struct Outcome {
    bool core_finished = false;
    std::uint64_t core_cycles = 0;
    double core_lat_mean = 0;
    sim::Cycle core_lat_max = 0;
    double dma_bw = 0;
};

Outcome run(bool qos_baseline) {
    sim::SimContext ctx;
    soc::SocConfig cfg;
    cfg.llc.max_outstanding = 4;
    cfg.llc.request_interval = 2; // LLC slower than aggregate demand
    if (qos_baseline) {
        cfg.arbitration = ic::XbarArbitration::kQosPriority;
        cfg.realm.enabled = false; // baseline: QoS *instead of* REALM
    }
    soc::CheshireSoc soc{ctx, cfg};
    for (axi::Addr a = 0; a < 0x20000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x20000);

    if (!qos_baseline) {
        // Credit-based regulation: cap the DMA at ~60 % of the LLC's
        // descriptor rate, leaving guaranteed room for the core.
        soc.queue_boot_script({
            soc::CheshireSoc::BootRegionPlan{1ULL << 30, 1ULL << 20, 256},
            soc::CheshireSoc::BootRegionPlan{2400, 1000, 256},
        });
        ctx.run_until([&] { return soc.boot_master().done(); }, 10000);
    }

    traffic::DmaConfig dcfg;
    // Single-beat bursts with deep pipelining: the aggressor has a request
    // pending at the crossbar almost every cycle, so strict priority leaves
    // no arbitration slot for anyone below it.
    dcfg.burst_beats = 1;
    dcfg.num_buffers = 24;
    dcfg.max_outstanding_reads = 24;
    dcfg.max_outstanding_writes = 24;
    dcfg.qos = 7; // top priority under QoS arbitration
    traffic::DmaEngine dma{ctx, "dsa", soc.dsa_port(0), dcfg};
    dma.push_job(traffic::DmaJob{kDram + 0x10000, kSpm, 0x4000, true});
    ctx.run(2000);

    traffic::StreamWorkload wl{{.base = kDram, .bytes = 0x4000, .op_bytes = 8,
                                .stride_bytes = 8, .repeat = 4}};
    traffic::CoreConfig ccfg;
    ccfg.qos = 0; // low priority
    traffic::CoreModel core{ctx, "core", soc.core_port(), wl, ccfg};
    const sim::Cycle t0 = ctx.now();
    const std::uint64_t dma0 = dma.bytes_read();
    const bool finished = ctx.run_until([&] { return core.done(); }, 2'000'000);

    Outcome out;
    out.core_finished = finished;
    out.core_cycles = (finished ? core.finish_cycle() : ctx.now()) - t0;
    out.core_lat_mean = core.load_latency().mean();
    out.core_lat_max = core.load_latency().max();
    out.dma_bw = static_cast<double>(dma.bytes_read() - dma0) /
                 static_cast<double>(ctx.now() - t0);
    return out;
}

} // namespace

int main() {
    std::puts("== Baseline: AxQOS strict priority vs AXI-REALM credits ==");
    std::puts("(high-priority DMA saturates the LLC; low-priority core competes)\n");

    const Outcome qos = run(true);
    const Outcome credit = run(false);

    std::printf("%-28s %16s %16s\n", "", "QoS priority", "REALM credits");
    std::printf("%-28s %16s %16s\n", "core finished",
                qos.core_finished ? "yes" : "NO (starved)",
                credit.core_finished ? "yes" : "NO");
    std::printf("%-28s %16llu %16llu\n", "core run cycles",
                static_cast<unsigned long long>(qos.core_cycles),
                static_cast<unsigned long long>(credit.core_cycles));
    std::printf("%-28s %16.1f %16.1f\n", "core load latency (mean)", qos.core_lat_mean,
                credit.core_lat_mean);
    std::printf("%-28s %16llu %16llu\n", "core load latency (max)",
                static_cast<unsigned long long>(qos.core_lat_max),
                static_cast<unsigned long long>(credit.core_lat_max));
    std::printf("%-28s %16.2f %16.2f\n", "DMA bandwidth [B/cyc]", qos.dma_bw,
                credit.dma_bw);

    std::puts("\ncredit-based regulation bounds the core's latency regardless of the");
    std::puts("aggressor's priority; strict priority starves the low-priority manager");
    std::puts("whenever demand exceeds capacity (the starvation risk the paper cites).");
    return credit.core_finished ? 0 : 1;
}
