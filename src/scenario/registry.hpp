/// \file
/// \brief Named scenario sweeps: every bench table in this repo as a
///        declarative list of `ScenarioConfig`s, buildable by name.
///
/// A sweep bundles the experiment points of one figure/table (baseline
/// included), the heading and footnotes its bench prints, and the index of
/// the point that serves as the 100 %-performance reference. Benches,
/// tests, and the JSON emitter all consume the same structure, so a new
/// experiment is one factory function here — no new harness code.
#pragma once

#include "scenario/scenario.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace realm::scenario {

/// One experiment point of a sweep.
struct SweepPoint {
    std::string label;
    ScenarioConfig config;
};

/// A named family of scenario points (typically one figure or table).
struct Sweep {
    std::string name;
    std::string title;               ///< heading line printed by benches
    std::vector<std::string> notes;  ///< trailing commentary lines
    /// Point whose `run_cycles` is the 100 % performance reference.
    std::optional<std::size_t> baseline_index;
    std::vector<SweepPoint> points;
};

/// Names of all registered sweeps, in registration order.
[[nodiscard]] std::vector<std::string> sweep_names();

/// True when `name` is a registered sweep.
[[nodiscard]] bool has_sweep(const std::string& name);

/// Builds the named sweep (aborts via contract violation when unknown; use
/// `has_sweep` to probe). Each point's `seed` is `derive_seed(name, index)`.
[[nodiscard]] Sweep make_sweep(const std::string& name);

} // namespace realm::scenario
