#include "soc/config_master.hpp"

#include "axi/builder.hpp"

#include <cstring>
#include <utility>

namespace realm::soc {

ConfigMaster::ConfigMaster(sim::SimContext& ctx, std::string name, axi::AxiChannel& port,
                           axi::IdT tid)
    : Component{ctx, std::move(name)}, port_{port}, tid_{tid} {}

void ConfigMaster::reset() {
    script_.clear();
    results_.clear();
    in_flight_ = false;
    phase_ = Phase::kIdle;
    unexpected_ = 0;
}

void ConfigMaster::tick() {
    switch (phase_) {
    case Phase::kIdle: {
        if (script_.empty()) {
            idle_forever(); // woken by push()
            return;
        }
        current_ = script_.front();
        if (current_.write) {
            if (!port_.can_send_aw()) { return; }
            port_.send_aw(axi::make_aw(tid_, current_.addr, 1, /*size=*/3, now()));
            script_.pop_front();
            in_flight_ = true;
            phase_ = Phase::kAwaitW;
        } else {
            if (!port_.can_send_ar()) { return; }
            port_.send_ar(axi::make_ar(tid_, current_.addr, 1, /*size=*/3, now()));
            script_.pop_front();
            in_flight_ = true;
            phase_ = Phase::kAwaitR;
        }
        return;
    }
    case Phase::kAwaitW: {
        if (!port_.can_send_w()) { return; }
        axi::WFlit w;
        // Registers are 32-bit on the 64-bit bus; replicate into both lanes
        // so the addressed lane always carries the value.
        std::memcpy(w.data.bytes.data(), &current_.wdata, sizeof current_.wdata);
        std::memcpy(w.data.bytes.data() + 4, &current_.wdata, sizeof current_.wdata);
        w.last = true;
        port_.send_w(w);
        phase_ = Phase::kAwaitB;
        return;
    }
    case Phase::kAwaitB: {
        if (!port_.has_b()) { return; }
        const axi::BFlit b = port_.recv_b();
        ConfigResult res;
        res.op = current_;
        res.error = b.resp != axi::Resp::kOkay;
        if (res.error != current_.expect_error) { ++unexpected_; }
        results_.push_back(res);
        in_flight_ = false;
        phase_ = Phase::kIdle;
        return;
    }
    case Phase::kAwaitR: {
        if (!port_.has_r()) { return; }
        const axi::RFlit r = port_.recv_r();
        if (!r.last) { return; } // burst error responses: wait for the tail
        ConfigResult res;
        res.op = current_;
        res.error = r.resp != axi::Resp::kOkay;
        const std::size_t lane = static_cast<std::size_t>(current_.addr % 8) & 4U;
        std::memcpy(&res.rdata, r.data.bytes.data() + lane, sizeof res.rdata);
        if (res.error != current_.expect_error) { ++unexpected_; }
        results_.push_back(res);
        in_flight_ = false;
        phase_ = Phase::kIdle;
        return;
    }
    }
}

} // namespace realm::soc
