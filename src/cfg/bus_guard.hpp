/// \file
/// \brief Bus guard protecting the AXI-REALM configuration space.
///
/// Paper, Section III-B: after reset the configuration space is unclaimed
/// and every access except a write to the guard register errors. A trusted
/// manager (e.g. the HWRoT during boot) claims ownership by writing the
/// guard register; the guard then admits only accesses whose transaction ID
/// matches the owner. The owner can hand exclusive ownership to another
/// manager by writing that manager's TID to the guard register.
#pragma once

#include "cfg/regbus.hpp"

#include <cstdint>

namespace realm::cfg {

class BusGuard final : public RegTarget {
public:
    /// Byte offset of the guard register inside the protected space.
    static constexpr axi::Addr kGuardOffset = 0x0;
    /// Guard-register read value while unclaimed.
    static constexpr std::uint32_t kUnclaimed = 0xFFFF'FFFFU;

    /// \param inner  the protected register file; offsets other than the
    ///        guard register are forwarded untouched.
    explicit BusGuard(RegTarget& inner) : inner_{&inner} {}

    RegRsp reg_access(const RegReq& req) override {
        if (req.addr == kGuardOffset) {
            if (!req.write) { return RegRsp::ok(claimed_ ? owner_ : kUnclaimed); }
            if (!claimed_) {
                // Claim: the *writing* manager becomes the owner. The paper
                // keys ownership on the unique transaction ID.
                claimed_ = true;
                owner_ = req.tid;
                ++claims_;
                return RegRsp::ok();
            }
            if (req.tid == owner_) {
                // Handover to the TID named in the write data.
                owner_ = req.wdata;
                ++handovers_;
                return RegRsp::ok();
            }
            ++rejected_;
            return RegRsp::err();
        }
        if (!claimed_ || req.tid != owner_) {
            ++rejected_;
            return RegRsp::err();
        }
        return inner_->reg_access(req);
    }

    /// System reset releases the claim.
    void reset() noexcept {
        claimed_ = false;
        owner_ = 0;
        claims_ = 0;
        handovers_ = 0;
        rejected_ = 0;
    }

    /// \name Introspection
    ///@{
    [[nodiscard]] bool claimed() const noexcept { return claimed_; }
    [[nodiscard]] axi::IdT owner() const noexcept { return owner_; }
    [[nodiscard]] std::uint64_t rejected_accesses() const noexcept { return rejected_; }
    [[nodiscard]] std::uint64_t claims() const noexcept { return claims_; }
    [[nodiscard]] std::uint64_t handovers() const noexcept { return handovers_; }
    ///@}

private:
    RegTarget* inner_;
    bool claimed_ = false;
    axi::IdT owner_ = 0;
    std::uint64_t claims_ = 0;
    std::uint64_t handovers_ = 0;
    std::uint64_t rejected_ = 0;
};

} // namespace realm::cfg
