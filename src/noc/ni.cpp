#include "noc/ni.hpp"

#include "sim/check.hpp"

namespace realm::noc {

void NocNi::reset() {
    w_dest_.clear();
    w_beats_left_.clear();
    w_in_flight_.clear();
    r_in_flight_.clear();
    rsp_rr_ = 0;
}

bool NocNi::try_eject_request(const NocPacket& pkt,
                              const std::vector<axi::AxiChannel*>& egress) {
    REALM_EXPECTS(pkt.src < egress.size() && egress[pkt.src] != nullptr,
                  owner_ + ": request ejected at a node without a subordinate");
    const bool credited = fc_.mode == FlowControl::kCredited;
    axi::AxiChannel& ch = *egress[pkt.src];
    if (const auto* aw = std::get_if<axi::AwFlit>(&pkt.flit)) {
        if (!ch.aw.can_push()) {
            // The injector held credits for this flit, so the staging space
            // exists by construction; a full lane here is a credit leak.
            REALM_ENSURES(!credited,
                          owner_ + ": credited request ejection backpressured");
            return false;
        }
        ch.aw.push(*aw);
        return true;
    }
    if (const auto* w = std::get_if<axi::WFlit>(&pkt.flit)) {
        if (!ch.w.can_push()) {
            REALM_ENSURES(!credited,
                          owner_ + ": credited request ejection backpressured");
            return false;
        }
        ch.w.push(*w);
        return true;
    }
    const auto* ar = std::get_if<axi::ArFlit>(&pkt.flit);
    REALM_EXPECTS(ar != nullptr, owner_ + ": malformed request packet");
    if (!ch.ar.can_push()) {
        REALM_ENSURES(!credited, owner_ + ": credited request ejection backpressured");
        return false;
    }
    ch.ar.push(*ar);
    return true;
}

bool NocNi::try_eject_response(const NocPacket& pkt, axi::AxiChannel* local_mgr) {
    REALM_EXPECTS(local_mgr != nullptr,
                  owner_ + ": response ejected at a node without a manager");
    if (const auto* b = std::get_if<axi::BFlit>(&pkt.flit)) {
        if (!local_mgr->b.can_push()) { return false; }
        if (auto it = w_in_flight_.find(b->id); it != w_in_flight_.end() &&
                                                it->second.count > 0) {
            --it->second.count;
        }
        local_mgr->b.push(*b);
        if (book_ != nullptr) { book_->rsp(pkt.dest, pkt.src).release(pkt.flits); }
        return true;
    }
    const auto* r = std::get_if<axi::RFlit>(&pkt.flit);
    REALM_EXPECTS(r != nullptr, owner_ + ": malformed response packet");
    if (!local_mgr->r.can_push()) { return false; }
    if (r->last) {
        if (auto it = r_in_flight_.find(r->id); it != r_in_flight_.end() &&
                                                it->second.count > 0) {
            --it->second.count;
        }
    }
    local_mgr->r.push(*r);
    if (book_ != nullptr) { book_->rsp(pkt.dest, pkt.src).release(pkt.flits); }
    return true;
}

} // namespace realm::noc
