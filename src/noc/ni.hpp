/// \file
/// \brief Network-interface bookkeeping shared by every NoC router.
///
/// The ring node and the mesh router differ in how packets *move* (one lane
/// around a circle vs. policy-routed 2D hops), but their AXI network
/// interfaces are identical: requests are packetized with an AW-before-data
/// lane discipline and AXI same-ID ordering, ejected requests land in
/// per-source egress staging in front of an `ic::AxiMux`, and responses are
/// injected round-robin over the sources waiting at the local subordinate.
/// `NocNi` owns exactly that state so both fabrics share one flow-control
/// implementation (and one set of bugs).
///
/// The NI enforces end-to-end credits: a request worm is injected only
/// while the source holds credits from the target subordinate's pool
/// (returned when the target's staging drains into the egress mux), so
/// request ejection can never backpressure the network — asserted, not
/// provisioned. Responses draw on a separate pool per (manager,
/// subordinate) pair, bounding in-flight responses toward any manager;
/// those credits return when the response ejects into the local manager
/// channel. With `credit_return_delay > 0` every return additionally rides
/// the response network for that many cycles before the injector sees it.
///
/// **Ordering under multi-path routing.** Adaptive and randomized mesh
/// policies (O1TURN, west-first) can deliver two worms of one (src, dest)
/// pair out of injection order. The NI therefore stamps every worm with a
/// per-(pair, network) sequence number at injection, and the ejecting side
/// holds out-of-order arrivals in a reorder stash until the gap closes —
/// delivery into the egress lanes / the local manager is always in
/// injection order, which preserves the AW-before-data lane pairing and
/// the AXI same-ID rules under every routing policy. The stash is bounded
/// by the end-to-end credit pool (a stashed worm still holds its credits),
/// so it adds no unbounded buffer; under single-path policies (XY, YX, the
/// ring) arrivals are always in order and the stash stays empty.
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "noc/credit.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"

#include "sim/context.hpp"

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace realm::noc {

class NocNi {
public:
    /// \param ctx      Simulation clock (credit-return maturation).
    /// \param book     End-to-end credit book of the fabric (required).
    /// \param routing  Routing policy of the fabric — the NI assigns each
    ///                 worm's route class / VC at injection (kXY for the
    ///                 ring and every other single-path fabric).
    NocNi(const sim::SimContext& ctx, std::string owner, const NocFlowConfig& fc,
          CreditBook* book, RoutingPolicy routing = RoutingPolicy::kXY)
        : ctx_{&ctx}, owner_{std::move(owner)}, fc_{fc}, book_{book},
          routing_{routing} {
        REALM_EXPECTS(book_ != nullptr, owner_ + ": NoC NI needs a credit book");
    }

    void reset();

    /// \name Ejection (packets whose dest is the local node)
    ///@{
    /// Accepts a request packet: in-order packets are delivered into the
    /// per-source egress staging toward the local subordinate's mux (space
    /// guaranteed — the injector reserved it through the credit pool,
    /// asserted); out-of-order packets are stashed until the gap closes.
    /// Always succeeds (returns true) so the router can retire the link
    /// head unconditionally.
    bool try_eject_request(const NocPacket& pkt,
                           const std::vector<axi::AxiChannel*>& egress);
    /// Accepts a response packet: in-order packets are delivered to the
    /// local manager (retiring the same-ID bookkeeping on B / last R and
    /// returning the response's end-to-end credits); out-of-order packets
    /// are stashed. Returns false only when the in-order head cannot be
    /// delivered this cycle (manager channel backpressure).
    bool try_eject_response(const NocPacket& pkt, axi::AxiChannel* local_mgr);
    /// Retries delivering in-order stashed responses. Required every tick:
    /// after a drain stops on manager backpressure, the stash head *is*
    /// the expected packet, and no future arrival will carry that sequence
    /// number again — delivery must be retried as the manager drains, not
    /// on arrival. (Requests never need this: their delivery cannot
    /// backpressure, so a request drain never stops early.)
    void drain_response_stash(axi::AxiChannel* local_mgr);
    /// True while any response sits in the reorder stash — the owning
    /// router must stay awake (stash progress rides on the local manager
    /// draining, which raises no wake).
    [[nodiscard]] bool has_stashed_responses() const {
        for (const auto& [src, ro] : rsp_reorder_) {
            if (!ro.stash.empty()) { return true; }
        }
        return false;
    }
    ///@}

    /// \name Injection (local manager / subordinate into the network)
    ///@{
    /// Injects at most one request packet from the local manager. `route`
    /// maps (destination node, worm flits, route class/VC) to the outgoing
    /// link able to accept that worm this cycle, or nullptr on backpressure
    /// (the flit is then held and retried, preserving the lane order). AW
    /// travels before its data; W continuation beats take priority over new
    /// reads; an AW or AR whose ID has in-flight transactions toward a
    /// *different* node stalls until they retire (the same rule
    /// `ic::AxiDemux` enforces). Every packet additionally needs end-to-end
    /// credits from the target subordinate's pool; a credit-starved head
    /// holds its lane exactly like link backpressure.
    template <typename RouteFn>
    bool inject_requests(std::uint8_t self, axi::AxiChannel& mgr,
                         const ic::AddrMap& map, RouteFn&& route) {
        const std::uint32_t data_flits = fc_.packet_flits(/*data_carrying=*/true);
        if (mgr.aw.can_pop()) {
            const axi::AwFlit& head = mgr.aw.front();
            const auto dest_opt = map.decode(head.addr);
            REALM_EXPECTS(dest_opt.has_value(), owner_ + ": unmapped NoC address");
            const auto dest = static_cast<std::uint8_t>(*dest_opt);
            const auto it = w_in_flight_.find(head.id);
            const bool ordering_ok = it == w_in_flight_.end() ||
                                     it->second.count == 0 || it->second.dest == dest;
            if (ordering_ok) {
                if (NocLink* out = try_route(self, dest, 1, /*request_net=*/true,
                                             route)) {
                    axi::AwFlit aw = mgr.aw.pop();
                    auto& fl = w_in_flight_[aw.id];
                    fl.dest = dest;
                    ++fl.count;
                    w_dest_.push_back(dest);
                    w_beats_left_.push_back(aw.beats());
                    req_take(self, dest, 1);
                    out->push(make_packet(self, dest, 1, /*request_net=*/true, aw));
                    return true;
                }
                return false; // hold the AW; W/AR behind it wait their turn
            }
        }
        if (!w_dest_.empty() && mgr.w.can_pop()) {
            const std::uint8_t dest = w_dest_.front();
            if (NocLink* out = try_route(self, dest, data_flits,
                                         /*request_net=*/true, route)) {
                axi::WFlit w = mgr.w.pop();
                req_take(self, dest, data_flits);
                out->push(make_packet(self, dest, data_flits, /*request_net=*/true,
                                      w));
                if (--w_beats_left_.front() == 0) {
                    REALM_ENSURES(w.last, owner_ + ": W burst ended without WLAST");
                    w_dest_.pop_front();
                    w_beats_left_.pop_front();
                }
                return true;
            }
            return false;
        }
        if (mgr.ar.can_pop()) {
            const axi::ArFlit& head = mgr.ar.front();
            const auto dest_opt = map.decode(head.addr);
            REALM_EXPECTS(dest_opt.has_value(), owner_ + ": unmapped NoC address");
            const auto dest = static_cast<std::uint8_t>(*dest_opt);
            const auto it = r_in_flight_.find(head.id);
            const bool ordering_ok = it == r_in_flight_.end() ||
                                     it->second.count == 0 || it->second.dest == dest;
            if (!ordering_ok) { return false; }
            if (NocLink* out = try_route(self, dest, 1, /*request_net=*/true,
                                         route)) {
                axi::ArFlit ar = mgr.ar.pop();
                auto& fl = r_in_flight_[ar.id];
                fl.dest = dest;
                ++fl.count;
                req_take(self, dest, 1);
                out->push(make_packet(self, dest, 1, /*request_net=*/true, ar));
                return true;
            }
        }
        return false;
    }

    /// Injects at most one response packet from the local subordinate,
    /// round-robin over the sources whose responses wait at the egress mux.
    /// `route` maps (response destination, worm flits, route class/VC) to
    /// the outgoing link, or nullptr on backpressure — a blocked or
    /// credit-starved source does not stop a routable one.
    template <typename RouteFn>
    bool inject_responses(std::uint8_t self,
                          const std::vector<axi::AxiChannel*>& egress,
                          RouteFn&& route) {
        const std::uint32_t data_flits = fc_.packet_flits(/*data_carrying=*/true);
        const auto n = static_cast<std::uint32_t>(egress.size());
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t src = (rsp_rr_ + 1 + i) % n;
            axi::AxiChannel* ch = egress[src];
            if (ch == nullptr) { continue; }
            const auto dest = static_cast<std::uint8_t>(src);
            if (ch->b.can_pop()) {
                if (NocLink* out = try_route(self, dest, 1, /*request_net=*/false,
                                             route)) {
                    rsp_take(self, dest, 1);
                    out->push(make_packet(self, dest, 1, /*request_net=*/false,
                                          ch->b.pop()));
                    rsp_rr_ = src;
                    return true;
                }
                continue;
            }
            if (ch->r.can_pop()) {
                if (NocLink* out = try_route(self, dest, data_flits,
                                             /*request_net=*/false, route)) {
                    rsp_take(self, dest, data_flits);
                    out->push(make_packet(self, dest, data_flits,
                                          /*request_net=*/false, ch->r.pop()));
                    rsp_rr_ = src;
                    return true;
                }
            }
        }
        return false;
    }
    ///@}

    [[nodiscard]] const NocFlowConfig& flow() const noexcept { return fc_; }
    [[nodiscard]] RoutingPolicy routing() const noexcept { return routing_; }

    /// \name Reorder-stash introspection (fabric invariant checkers)
    ///@{
    /// Flits stashed out of order for request packets from `src` (0 under
    /// single-path policies).
    [[nodiscard]] std::uint32_t stashed_request_flits(std::uint8_t src) const {
        return stashed_flits(req_reorder_, src);
    }
    /// Flits stashed out of order for response packets from `src`.
    [[nodiscard]] std::uint32_t stashed_response_flits(std::uint8_t src) const {
        return stashed_flits(rsp_reorder_, src);
    }
    ///@}

private:
    /// Per-(pair, network) reorder state at the ejecting side: the next
    /// expected sequence number and the stash of early arrivals.
    struct Reorder {
        std::uint16_t expected = 0;
        std::map<std::uint16_t, NocPacket> stash;
    };

    template <typename Flit>
    [[nodiscard]] NocPacket make_packet(std::uint8_t self, std::uint8_t dest,
                                        std::uint32_t flits, bool request_net,
                                        Flit&& flit) {
        auto& seq = (request_net ? req_seq_ : rsp_seq_)[dest];
        NocPacket pkt;
        pkt.src = self;
        pkt.dest = dest;
        pkt.flits = static_cast<std::uint8_t>(flits);
        pkt.seq = seq++;
        pkt.vc = route_class(routing_, self, dest, pkt.seq);
        pkt.flit = std::forward<Flit>(flit);
        return pkt;
    }

    /// Credit gate + route lookup for one candidate worm. Matures pending
    /// credit returns first so a delayed return becomes visible the cycle
    /// it arrives.
    template <typename RouteFn>
    [[nodiscard]] NocLink* try_route(std::uint8_t self, std::uint8_t dest,
                                     std::uint32_t flits, bool request_net,
                                     RouteFn&& route) {
        CreditPool& pool = request_net ? book_->req(dest, self)
                                       : book_->rsp(dest, self);
        pool.settle(ctx_->now());
        if (!pool.can_take(flits)) { return nullptr; }
        const auto& seq_map = request_net ? req_seq_ : rsp_seq_;
        const auto it = seq_map.find(dest);
        const std::uint16_t seq = it == seq_map.end() ? 0 : it->second;
        return route(dest, flits, route_class(routing_, self, dest, seq));
    }

    void req_take(std::uint8_t self, std::uint8_t dest, std::uint32_t flits) {
        book_->req(dest, self).take(flits);
    }
    void rsp_take(std::uint8_t self, std::uint8_t dest, std::uint32_t flits) {
        book_->rsp(dest, self).take(flits);
    }

    /// Delivers consecutive stashed packets starting at `ro.expected`
    /// until the stash has a gap or `deliver` reports backpressure.
    template <typename Deliver>
    static void drain_stash(Reorder& ro, Deliver&& deliver) {
        for (auto it = ro.stash.find(ro.expected); it != ro.stash.end();
             it = ro.stash.find(ro.expected)) {
            if (!deliver(it->second)) { return; }
            ro.stash.erase(it);
            ++ro.expected;
        }
    }

    /// Pushes one in-order request packet into its egress lane (space
    /// asserted — the injector held credits for it).
    void deliver_request(const NocPacket& pkt, axi::AxiChannel& ch);
    /// Delivers one in-order response packet to the local manager; returns
    /// false on manager-channel backpressure.
    bool deliver_response(const NocPacket& pkt, axi::AxiChannel& mgr);

    [[nodiscard]] static std::uint32_t
    stashed_flits(const std::map<std::uint8_t, Reorder>& reorder,
                  std::uint8_t src) {
        const auto it = reorder.find(src);
        if (it == reorder.end()) { return 0; }
        std::uint32_t total = 0;
        for (const auto& [seq, pkt] : it->second.stash) { total += pkt.flits; }
        return total;
    }

    const sim::SimContext* ctx_;
    std::string owner_; ///< router name, for contract messages
    NocFlowConfig fc_;
    CreditBook* book_; ///< fabric-owned end-to-end pools
    RoutingPolicy routing_;

    /// Ingress W routing: dest node per accepted AW, in order.
    std::deque<std::uint8_t> w_dest_;
    std::deque<std::uint32_t> w_beats_left_;
    /// AXI same-ID ordering at the ingress (same rule as `ic::AxiDemux`).
    struct InFlight {
        std::uint8_t dest = 0;
        std::uint32_t count = 0;
    };
    std::unordered_map<axi::IdT, InFlight> w_in_flight_;
    std::unordered_map<axi::IdT, InFlight> r_in_flight_;
    /// Response injection round-robin over egress sources.
    std::uint32_t rsp_rr_ = 0;
    /// Per-destination injection sequence counters (requests / responses).
    std::unordered_map<std::uint8_t, std::uint16_t> req_seq_;
    std::unordered_map<std::uint8_t, std::uint16_t> rsp_seq_;
    /// Per-source ejection reorder state (requests / responses). Ordered
    /// maps: the per-tick stash drain iterates them, and delivery order
    /// must be deterministic (ascending source node).
    std::map<std::uint8_t, Reorder> req_reorder_;
    std::map<std::uint8_t, Reorder> rsp_reorder_;
};

} // namespace realm::noc
