/// \file
/// \brief Quickstart: build the Cheshire-like SoC, let a DMA trample a core,
///        then turn on AXI-REALM regulation and watch fairness return.
///
/// Build & run:  ./build/examples/quickstart
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"

#include <cstdio>

using namespace realm;

namespace {
constexpr axi::Addr kDram = 0x8000'0000; // LLC-backed main memory
constexpr axi::Addr kSpm = 0x7000'0000;  // accelerator scratchpad
} // namespace

int main() {
    // 1. A simulation context and the SoC: core port + one DSA port, both
    //    behind REALM units, sharing an AXI4 crossbar to LLC/SPM/config.
    sim::SimContext ctx;
    soc::CheshireSoc soc{ctx, soc::SocConfig{}};

    // 2. Seed DRAM and pre-warm the LLC (our experiments assume a hot cache).
    for (axi::Addr a = 0; a < 0x20000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a * 7);
    }
    soc.warm_llc(kDram, 0x20000);

    // 3. The trusted boot master claims the guarded config space and
    //    programs each REALM unit: [budget bytes, period cycles, fragment].
    //    Core: effectively unregulated. DMA: fragment to 1 beat, generous
    //    budget (regulation demo comes below).
    soc.queue_boot_script({
        soc::CheshireSoc::BootRegionPlan{1ULL << 30, 1ULL << 20, 256},
        soc::CheshireSoc::BootRegionPlan{1ULL << 30, 1ULL << 20, 256},
    });
    ctx.run_until([&] { return soc.boot_master().done(); }, 10000);
    std::printf("boot done: guard owner TID=0x%X, core unit %s, dsa unit %s\n",
                soc.guard().owner(), rt::to_string(soc.core_realm().state()),
                rt::to_string(soc.dsa_realm(0).state()));

    // 4. Traffic: the DSA DMA endlessly double-buffers 256-beat bursts from
    //    the LLC to its scratchpad; the core runs a fine-granular read loop.
    traffic::DmaConfig dma_cfg;
    dma_cfg.burst_beats = 256;
    traffic::DmaEngine dma{ctx, "dsa_dma", soc.dsa_port(0), dma_cfg};
    dma.push_job(traffic::DmaJob{kDram + 0x10000, kSpm, 0x4000, /*loop=*/true});

    traffic::StreamWorkload wl{{.base = kDram, .bytes = 0x8000, .op_bytes = 8,
                                .stride_bytes = 8}};
    traffic::CoreModel core{ctx, "core", soc.core_port(), wl};
    ctx.run_until([&] { return core.done(); }, 10'000'000);
    std::printf("\nuncontrolled contention: core load latency mean=%.1f max=%llu cycles\n",
                core.load_latency().mean(),
                static_cast<unsigned long long>(core.load_latency().max()));

    // 5. Now regulate: fragment the DMA's bursts to one beat so round-robin
    //    arbitration is fair again. Intrusive change: the unit isolates,
    //    drains its outstanding bursts, then applies and resumes.
    soc.dsa_realm(0).set_fragmentation(1);
    ctx.run_until([&] { return soc.dsa_realm(0).state() == rt::RealmState::kReady; },
                  100000);
    std::printf("DSA REALM unit drained and reconfigured to fragmentation %u\n",
                soc.dsa_realm(0).fragmentation());
    traffic::StreamWorkload wl2{{.base = kDram, .bytes = 0x8000, .op_bytes = 8,
                                 .stride_bytes = 8}};
    traffic::CoreModel core2{ctx, "core2", soc.core_port(), wl2};
    ctx.run_until([&] { return core2.done(); }, 10'000'000);
    std::printf("with fragmentation 1:    core load latency mean=%.1f max=%llu cycles\n",
                core2.load_latency().mean(),
                static_cast<unsigned long long>(core2.load_latency().max()));

    // 6. Observability: everything the M&R units saw, free of charge.
    const rt::RegionState& dma_region = soc.dsa_realm(0).mr().region(0);
    std::printf("\nM&R on the DSA port: %llu B moved, read latency mean %.1f cycles\n",
                static_cast<unsigned long long>(dma_region.bytes_total),
                dma_region.read_latency.mean());
    std::printf("DMA copy bandwidth: %.2f B/cycle, %llu chunks\n", dma.bandwidth(),
                static_cast<unsigned long long>(dma.chunks_completed()));
    return 0;
}
