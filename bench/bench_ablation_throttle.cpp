/// \file
/// \brief Ablation of the optional **throttling unit** (Section III-A): it
///        "limits the number of outstanding transactions to the downstream
///        memory system depending on the remaining budget, modulating
///        backpressure before the budget fully expires."
///
/// With throttling off, a budgeted DMA burns its credit at full speed and
/// then sits hard-isolated until the period ends (bursty service: deep
/// on/off pattern). With throttling on, the allowed outstanding transactions
/// shrink as credit drains, smoothing the same average bandwidth and
/// shortening the hard-isolation tail — visible to the victim core as a
/// tighter latency distribution.
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"

#include <cstdio>

namespace {

constexpr realm::axi::Addr kDram = 0x8000'0000;

struct Outcome {
    double dma_bw = 0;
    std::uint64_t isolation_cycles = 0;
    std::uint64_t throttle_stalls = 0;
    std::uint64_t depletions = 0;
    double core_lat_mean = 0;
    realm::sim::Cycle core_lat_p99 = 0;
};

Outcome run(bool throttle) {
    using namespace realm;
    sim::SimContext ctx;
    soc::SocConfig cfg;
    cfg.llc.max_outstanding = 4;
    cfg.realm.throttle_enabled = false; // configured per unit below
    soc::CheshireSoc soc{ctx, cfg};
    for (axi::Addr a = 0; a < 0x20000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x20000);

    soc.queue_boot_script({
        soc::CheshireSoc::BootRegionPlan{1ULL << 30, 1ULL << 20, 256}, // core: free
        soc::CheshireSoc::BootRegionPlan{4096, 2000, 8},               // DMA: budgeted
    });
    ctx.run_until([&] { return soc.boot_master().done(); }, 10000);
    soc.dsa_realm(0).set_throttle(throttle);

    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 64;
    dcfg.num_buffers = 4;
    dcfg.max_outstanding_reads = 4;
    traffic::DmaEngine dma{ctx, "dma", soc.dsa_port(0), dcfg};
    dma.push_job(traffic::DmaJob{kDram + 0x10000, 0x7000'0000, 0x4000, true});

    traffic::StreamWorkload wl{{.base = kDram, .bytes = 0x8000, .op_bytes = 8,
                                .stride_bytes = 8, .repeat = 12}};
    traffic::CoreModel core{ctx, "core", soc.core_port(), wl};
    const sim::Cycle t0 = ctx.now();
    const std::uint64_t dma0 = dma.bytes_read();
    ctx.run_until([&] { return core.done(); }, 10'000'000);

    Outcome out;
    out.dma_bw = static_cast<double>(dma.bytes_read() - dma0) /
                 static_cast<double>(ctx.now() - t0);
    out.isolation_cycles = soc.dsa_realm(0).mr().isolation_cycles();
    out.throttle_stalls = soc.dsa_realm(0).throttle_stalls();
    out.depletions = soc.dsa_realm(0).mr().region(0).depletion_events;
    out.core_lat_mean = core.load_latency().mean();
    out.core_lat_p99 = core.load_latency().quantile(0.99);
    return out;
}

} // namespace

int main() {
    std::puts("== Ablation: throttling unit on a budgeted DMA (4 KiB / 2000 cycles) ==\n");
    const Outcome off = run(false);
    const Outcome on = run(true);

    std::printf("%-28s %14s %14s\n", "", "throttle off", "throttle on");
    std::printf("%-28s %14.2f %14.2f\n", "DMA bandwidth [B/cyc]", off.dma_bw, on.dma_bw);
    std::printf("%-28s %14llu %14llu\n", "DMA hard-isolation cycles",
                static_cast<unsigned long long>(off.isolation_cycles),
                static_cast<unsigned long long>(on.isolation_cycles));
    std::printf("%-28s %14llu %14llu\n", "DMA throttle stalls",
                static_cast<unsigned long long>(off.throttle_stalls),
                static_cast<unsigned long long>(on.throttle_stalls));
    std::printf("%-28s %14llu %14llu\n", "DMA budget depletions",
                static_cast<unsigned long long>(off.depletions),
                static_cast<unsigned long long>(on.depletions));
    std::printf("%-28s %14.2f %14.2f\n", "core load latency (mean)", off.core_lat_mean,
                on.core_lat_mean);
    std::printf("%-28s %14llu %14llu\n", "core load latency (p99)",
                static_cast<unsigned long long>(off.core_lat_p99),
                static_cast<unsigned long long>(on.core_lat_p99));

    std::puts("\nthrottling converts hard isolation time into early backpressure");
    std::puts("(stalls) at equal average DMA bandwidth, smoothing the interference the");
    std::puts("core observes.");
    const bool throttled_early = on.throttle_stalls > off.throttle_stalls;
    const bool less_hard_isolation = on.isolation_cycles < off.isolation_cycles;
    return throttled_early && less_hard_isolation ? 0 : 1;
}
