/// \file
/// \brief Shared helpers for driving AXI channels by hand in unit tests.
#pragma once

#include "axi/builder.hpp"
#include "axi/channel.hpp"
#include "sim/context.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

namespace realm::test {

/// Steps `ctx` until `pred` holds, failing the test after `max_cycles`.
inline void step_until(sim::SimContext& ctx, const std::function<bool()>& pred,
                       sim::Cycle max_cycles = 10000) {
    ASSERT_TRUE(ctx.run_until(pred, max_cycles))
        << "condition not reached within " << max_cycles << " cycles";
}

/// Pushes a whole write burst (AW + beats) into a channel's manager side,
/// stepping the simulation as needed to respect link capacity.
inline void push_write_burst(sim::SimContext& ctx, axi::AxiChannel& ch, axi::IdT id,
                             axi::Addr addr, std::uint32_t beats, std::uint32_t beat_bytes,
                             std::uint8_t fill = 0xA5) {
    axi::ManagerView mgr{ch};
    step_until(ctx, [&] { return mgr.can_send_aw(); });
    mgr.send_aw(axi::make_aw(id, addr, beats, axi::size_of_bus(beat_bytes), ctx.now()));
    for (std::uint32_t i = 0; i < beats; ++i) {
        step_until(ctx, [&] { return mgr.can_send_w(); });
        axi::WFlit w;
        for (std::uint32_t b = 0; b < beat_bytes; ++b) {
            w.data.bytes[b] = static_cast<std::uint8_t>(fill + i + b);
        }
        w.last = i + 1 == beats;
        mgr.send_w(w);
    }
}

/// Collects `beats` R beats for `id`, stepping as needed; returns the last.
inline axi::RFlit collect_read_burst(sim::SimContext& ctx, axi::AxiChannel& ch,
                                     std::uint32_t beats) {
    axi::ManagerView mgr{ch};
    axi::RFlit last{};
    for (std::uint32_t i = 0; i < beats; ++i) {
        step_until(ctx, [&] { return mgr.has_r(); });
        last = mgr.recv_r();
        EXPECT_EQ(last.last, i + 1 == beats) << "beat " << i;
    }
    return last;
}

/// Waits for and pops a single B response.
inline axi::BFlit collect_b(sim::SimContext& ctx, axi::AxiChannel& ch) {
    axi::ManagerView mgr{ch};
    step_until(ctx, [&] { return mgr.has_b(); });
    return mgr.recv_b();
}

} // namespace realm::test
