/// \file
/// \brief Scenario: a malicious accelerator mounts a write-stall
///        denial-of-service attack; AXI-REALM detects and mitigates it.
///
/// Three acts:
///   1. the attack — the rogue DMA reserves write bandwidth at AW time and
///      trickles its data, starving a victim's writes (write buffer off);
///   2. detection — the victim-side M&R unit's latency statistics expose
///      the interference without any bus analyzer;
///   3. mitigation — the write buffer withholds AWs until data is complete,
///      and, for a persistently hostile manager, user-commanded isolation
///      cuts it off entirely.
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"

#include <cstdio>

using namespace realm;

namespace {
constexpr axi::Addr kDram = 0x8000'0000;

traffic::DmaConfig attacker_config() {
    traffic::DmaConfig cfg;
    cfg.burst_beats = 8;
    cfg.reserve_before_data = true; // claim W bandwidth before data exists
    cfg.w_stall_cycles = 64;        // ...then trickle one beat per 64 cycles
    return cfg;
}

double run_victim(sim::SimContext& ctx, soc::CheshireSoc& soc, const char* name,
                  rt::RealmUnit& victim_realm) {
    traffic::StreamWorkload wl{{.base = kDram, .bytes = 0x2000, .op_bytes = 8,
                                .stride_bytes = 8, .store_ratio16 = 16}};
    traffic::CoreModel victim{ctx, name, soc.core_port(), wl};
    ctx.run_until([&] { return victim.done(); }, 10'000'000);
    const rt::RegionState& r = victim_realm.mr().region(0);
    std::printf("  victim store latency: mean %.1f, max %llu cycles "
                "(M&R write-latency max: %llu)\n",
                victim.store_latency().mean(),
                static_cast<unsigned long long>(victim.store_latency().max()),
                static_cast<unsigned long long>(r.write_latency.max()));
    return victim.store_latency().mean();
}
} // namespace

int main() {
    std::puts("=== Act 1: the attack (write buffer disabled) ===");
    {
        sim::SimContext ctx;
        soc::SocConfig cfg;
        cfg.realm.write_buffer_enabled = false;
        soc::CheshireSoc soc{ctx, cfg};
        for (axi::Addr a = 0; a < 0x10000; a += 8) {
            soc.dram_image().write_u64(kDram + a, a);
        }
        soc.warm_llc(kDram, 0x10000);
        // Victim-side monitoring needs a region over the LLC span.
        soc.core_realm().set_region(0, rt::RegionConfig{kDram, kDram + 0x1000'0000, 0, 0});

        traffic::DmaEngine attacker{ctx, "attacker", soc.dsa_port(0), attacker_config()};
        attacker.push_job(traffic::DmaJob{kDram + 0x8000, kDram + 0xC000, 0x4000, true});
        ctx.run(500);
        const double mean = run_victim(ctx, soc, "victim", soc.core_realm());
        std::printf("  -> interconnect W channel starved; victim crawls at %.0fx the\n"
                    "     unloaded store latency\n\n",
                    mean / 6.0);
    }

    std::puts("=== Act 2 & 3: write buffer on; then isolate the rogue manager ===");
    {
        sim::SimContext ctx;
        soc::SocConfig cfg; // write buffer enabled by default
        soc::CheshireSoc soc{ctx, cfg};
        for (axi::Addr a = 0; a < 0x10000; a += 8) {
            soc.dram_image().write_u64(kDram + a, a);
        }
        soc.warm_llc(kDram, 0x10000);
        soc.core_realm().set_region(0, rt::RegionConfig{kDram, kDram + 0x1000'0000, 0, 0});

        traffic::DmaEngine attacker{ctx, "attacker", soc.dsa_port(0), attacker_config()};
        attacker.push_job(traffic::DmaJob{kDram + 0x8000, kDram + 0xC000, 0x4000, true});
        ctx.run(500);
        run_victim(ctx, soc, "victim", soc.core_realm());
        std::printf("  -> the write buffer holds the attacker's AWs until data is\n"
                    "     complete: xbar W-stall cycles = %llu\n\n",
                    static_cast<unsigned long long>(soc.xbar().w_stall_cycles(0)));

        // The supervisor decides the manager is hostile and cuts it off.
        std::puts("  supervisor: isolating the rogue manager...");
        soc.dsa_realm(0).set_user_isolation(true);
        ctx.run_until([&] { return soc.dsa_realm(0).fully_isolated(); }, 1'000'000);
        std::printf("  DSA unit state: %s (outstanding drained, new traffic blocked)\n",
                    rt::to_string(soc.dsa_realm(0).state()));
        const std::uint64_t before = attacker.bytes_read();
        ctx.run(5000);
        std::printf("  attacker progress while isolated: %llu bytes\n",
                    static_cast<unsigned long long>(attacker.bytes_read() - before));
    }
    return 0;
}
