/// \file
/// \brief Registered point-to-point links: the C++ analog of an AXI channel
///        behind a spill register.
#pragma once

#include "sim/check.hpp"
#include "sim/component.hpp"
#include "sim/context.hpp"
#include "sim/types.hpp"

#include <deque>
#include <functional>
#include <string>
#include <utility>

namespace realm::sim {

/// Single-producer / single-consumer FIFO with *registered* timing:
/// an element pushed at cycle N becomes poppable at cycle N+1.
///
/// This reproduces the behaviour of a valid/ready channel followed by one
/// register stage. With the default capacity of 2 (a "spill register" /
/// `axi_cut` in RTL terms) the link sustains one transfer per cycle under
/// backpressure-free operation regardless of the order in which producer
/// and consumer are evaluated within the cycle, so simulations are
/// order-independent and deterministic.
///
/// Producer protocol:   `if (link.can_push()) link.push(flit);`
/// Consumer protocol:   `if (link.can_pop())  f = link.pop();`
/// A producer must treat a full link as backpressure (AXI `ready` low) and
/// hold the flit; a consumer may `front()` without popping to make
/// combinational decisions (AXI `valid`-gated logic).
template <typename T>
class Link {
public:
    /// Timing discipline of the link.
    enum class Timing {
        kRegistered, ///< push at N -> poppable at N+1 (a register stage)
        kPassthrough ///< push at N -> poppable at N *if the consumer is
                     ///< evaluated after the producer* (combinational wire;
                     ///< construction order fixes evaluation order)
    };

    /// \param ctx       Simulation context providing the clock.
    /// \param capacity  Buffer depth; >= 2 for full-throughput pipes,
    ///                  1 models an unbuffered register (half throughput
    ///                  under sustained traffic).
    explicit Link(const SimContext& ctx, std::size_t capacity = 2, std::string name = {},
                  Timing timing = Timing::kRegistered)
        : ctx_{&ctx}, capacity_{capacity}, name_{std::move(name)}, timing_{timing} {
        REALM_EXPECTS(capacity_ >= 1, "link capacity must be at least 1");
    }

    /// True when the producer may push this cycle.
    [[nodiscard]] bool can_push() const noexcept { return entries_.size() < capacity_; }

    /// Pushes a flit; it becomes visible to the consumer next cycle.
    void push(T value) {
        REALM_EXPECTS(can_push(), "push into full link " + name_);
        entries_.push_back(Entry{std::move(value), ctx_->now()});
        ++total_pushed_;
        if (wake_on_push_ != nullptr) {
            // Registered flits are observable one cycle after the push, so
            // that is the earliest the consumer could make progress.
            wake_on_push_->wake(timing_ == Timing::kPassthrough ? ctx_->now()
                                                                : ctx_->now() + 1);
        }
    }

    /// True when the consumer can pop a flit this cycle (for registered
    /// links: the head entry was pushed in an earlier cycle).
    [[nodiscard]] bool can_pop() const noexcept {
        if (entries_.empty()) { return false; }
        if (timing_ == Timing::kPassthrough) { return true; }
        return entries_.front().pushed_at < ctx_->now();
    }

    /// Peeks at the head flit without consuming it.
    [[nodiscard]] const T& front() const {
        REALM_EXPECTS(can_pop(), "front of empty/not-ready link " + name_);
        return entries_.front().value;
    }

    /// Consumes and returns the head flit.
    T pop() {
        REALM_EXPECTS(can_pop(), "pop from empty/not-ready link " + name_);
        T v = std::move(entries_.front().value);
        entries_.pop_front();
        ++total_popped_;
        if (on_pop_) { on_pop_(); }
        return v;
    }

    /// Discards all buffered flits (reset).
    void clear() noexcept { entries_.clear(); }

    /// Scheduler wake-up wiring (activity-aware kernel): component woken
    /// whenever a flit is pushed — wire the consumer here so it may declare
    /// itself idle while the link is empty. (Producers never sleep while
    /// backpressured, so there is no pop-side wake hook.)
    void set_wake_on_push(Component* c) noexcept { wake_on_push_ = c; }

    /// Drain hook: invoked after every successful pop. The NoC's credited
    /// flow control uses this to return end-to-end credits when a staged
    /// flit leaves the network-interface buffer toward its subordinate.
    /// Note `clear()` bypasses the hook — credit state must be reset
    /// alongside the link by whoever owns both.
    void set_on_pop(std::function<void()> hook) { on_pop_ = std::move(hook); }

    /// \name Introspection
    ///@{
    [[nodiscard]] std::size_t occupancy() const noexcept { return entries_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
    [[nodiscard]] std::uint64_t total_pushed() const noexcept { return total_pushed_; }
    [[nodiscard]] std::uint64_t total_popped() const noexcept { return total_popped_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    ///@}

private:
    struct Entry {
        T value;
        Cycle pushed_at;
    };

    const SimContext* ctx_;
    std::size_t capacity_;
    std::string name_;
    Timing timing_ = Timing::kRegistered;
    std::deque<Entry> entries_;
    std::uint64_t total_pushed_ = 0;
    std::uint64_t total_popped_ = 0;
    Component* wake_on_push_ = nullptr;
    std::function<void()> on_pop_;
};

/// FIFO whose entries become poppable at an arbitrary future cycle; completion
/// stays in push order (the head blocks younger entries). Used to model
/// fixed/variable-latency service pipelines, e.g. SRAM access or DRAM banks.
template <typename T>
class TimedQueue {
public:
    explicit TimedQueue(const SimContext& ctx, std::string name = {})
        : ctx_{&ctx}, name_{std::move(name)} {}

    /// Enqueues `value`, poppable no earlier than `ready_at`.
    void push(T value, Cycle ready_at) {
        entries_.push_back(Entry{std::move(value), ready_at});
    }

    [[nodiscard]] bool can_pop() const noexcept {
        return !entries_.empty() && entries_.front().ready_at <= ctx_->now();
    }

    [[nodiscard]] const T& front() const {
        REALM_EXPECTS(can_pop(), "front of not-ready timed queue " + name_);
        return entries_.front().value;
    }

    T pop() {
        REALM_EXPECTS(can_pop(), "pop from not-ready timed queue " + name_);
        T v = std::move(entries_.front().value);
        entries_.pop_front();
        return v;
    }

    void clear() noexcept { entries_.clear(); }

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

private:
    struct Entry {
        T value;
        Cycle ready_at;
    };

    const SimContext* ctx_;
    std::string name_;
    std::deque<Entry> entries_;
};

} // namespace realm::sim
