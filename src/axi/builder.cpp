#include "axi/builder.hpp"

#include <algorithm>

namespace realm::axi {

std::vector<WFlit> make_write_beats(std::span<const std::uint8_t> bytes, std::uint32_t beats,
                                    std::uint32_t beat_bytes) {
    REALM_EXPECTS(beats >= 1 && beats <= kMaxBurstBeats, "write burst beats out of [1,256]");
    REALM_EXPECTS(beat_bytes >= 1 && beat_bytes <= kMaxDataBytes, "illegal beat width");
    std::vector<WFlit> out;
    out.reserve(beats);
    std::size_t offset = 0;
    for (std::uint32_t i = 0; i < beats; ++i) {
        const std::size_t take = std::min<std::size_t>(beat_bytes, bytes.size() - std::min(offset, bytes.size()));
        WFlit f = make_w(bytes.subspan(std::min(offset, bytes.size()), take), i + 1 == beats);
        out.push_back(f);
        offset += beat_bytes;
    }
    return out;
}

} // namespace realm::axi
