/// \file
/// \brief Ring NoC assembly: nodes, ring links, and per-node egress muxes.
///
/// The "more scalable network-on-chip" integration of Figure 1b: every node
/// may host one AXI manager; nodes named in `subordinate_nodes` also host a
/// subordinate, reached through per-source egress channels and an
/// `ic::AxiMux` (which provides the burst-granular W ordering a real NI
/// needs). REALM units drop in front of any manager port unchanged —
/// regulation is interconnect-agnostic, which this module exists to prove.
///
/// Flow control (see credit.hpp): per-source staging is sized by the
/// end-to-end credit pool and its occupancy is *enforced* — the injecting
/// NI only sends while it holds credits, returned as the egress mux drains
/// the staging (after `credit_return_delay` cycles on the response network
/// when configured). Without the credit bound, the mux's per-granted-burst
/// W-channel reservation plus a filling staging lane would be a protocol
/// deadlock; credits make the bound structural instead of provisioned.
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "ic/mux.hpp"
#include "noc/credit.hpp"
#include "noc/node.hpp"

#include "sim/context.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace realm::noc {

class NocRing {
public:
    /// \param node_map          decodes addresses to node ids.
    /// \param subordinate_nodes nodes hosting a local subordinate.
    /// \param flow              transport model and its knobs.
    NocRing(sim::SimContext& ctx, std::string name, NodeId num_nodes,
            ic::AddrMap node_map, std::vector<NodeId> subordinate_nodes,
            NocFlowConfig flow = {});

    NocRing(const NocRing&) = delete;
    NocRing& operator=(const NocRing&) = delete;

    /// Channel a manager at `node` drives (requests in, responses out).
    [[nodiscard]] axi::AxiChannel& manager_port(NodeId node) {
        return *mgr_ports_.at(node);
    }
    /// Channel to attach a subordinate model at `node`.
    [[nodiscard]] axi::AxiChannel& subordinate_port(NodeId node);

    [[nodiscard]] NocNode& node(NodeId i) { return *nodes_.at(i); }
    [[nodiscard]] NodeId num_nodes() const noexcept {
        return static_cast<NodeId>(nodes_.size());
    }
    /// The ring is not spatially sharded: one lane serializes every hop, so
    /// all nodes stay on shard 0 (interface parity with `NocMesh`).
    [[nodiscard]] unsigned shard_of_node(NodeId) const noexcept { return 0; }
    [[nodiscard]] const NocFlowConfig& flow() const noexcept { return flow_; }
    /// End-to-end credit book.
    [[nodiscard]] const CreditBook* credit_book() const noexcept {
        return book_.get();
    }

    /// Aggregate ring statistics (hops forwarded across all nodes).
    [[nodiscard]] std::uint64_t total_forwarded() const noexcept;
    /// Aggregate head-of-line stall cycles across all nodes.
    [[nodiscard]] std::uint64_t total_ring_stalls() const noexcept;
    /// Aggregate W-channel reservation stalls across the subordinate-side
    /// egress muxes (the DoS exposure metric, cf. `AxiXbar::w_stall_cycles`).
    [[nodiscard]] std::uint64_t total_mux_w_stalls() const noexcept;

    /// Asserts every flow-control invariant of the fabric: credit
    /// conservation on every pool, staged NI flits within the end-to-end
    /// pool, and every link VC within `vc_depth`. Pushes and pool
    /// transitions already assert these inline; tests call this every
    /// cycle to pin the whole-fabric picture.
    void check_flow_invariants() const;

private:
    NocFlowConfig flow_;
    std::unique_ptr<CreditBook> book_;
    std::vector<std::unique_ptr<axi::AxiChannel>> mgr_ports_;
    std::vector<std::unique_ptr<NocLink>> req_links_;
    std::vector<std::unique_ptr<NocLink>> rsp_links_;
    /// egress_[node][src] (nullptr when `node` hosts no subordinate).
    std::vector<std::vector<std::unique_ptr<axi::AxiChannel>>> egress_;
    std::vector<std::unique_ptr<axi::AxiChannel>> sub_ports_;
    std::vector<std::unique_ptr<ic::AxiMux>> muxes_;
    std::vector<std::unique_ptr<NocNode>> nodes_;
    std::vector<int> sub_index_; ///< node -> index into sub_ports_ or -1
};

} // namespace realm::noc
