#include "mem/backend.hpp"

#include <algorithm>

namespace realm::mem {

DramBackend::DramBackend(DramTiming timing)
    : timing_{timing},
      open_row_(timing.banks, -1),
      bank_free_at_(timing.banks, 0) {}

void DramBackend::reset_timing() {
    std::fill(open_row_.begin(), open_row_.end(), std::int64_t{-1});
    std::fill(bank_free_at_.begin(), bank_free_at_.end(), sim::Cycle{0});
    row_hits_ = 0;
    row_misses_ = 0;
}

sim::Cycle DramBackend::access_latency(axi::Addr addr, std::uint32_t beats, bool /*is_write*/,
                                       sim::Cycle now) {
    const axi::Addr stripe = addr / timing_.row_bytes;
    const std::size_t bank = static_cast<std::size_t>(stripe % timing_.banks);
    const auto row = static_cast<std::int64_t>(stripe / timing_.banks);

    const bool hit = open_row_[bank] == row;
    (hit ? row_hits_ : row_misses_) += 1;
    open_row_[bank] = row;

    const sim::Cycle core_latency = hit ? timing_.row_hit : timing_.row_miss;
    // Serialize behind earlier work on the same bank.
    const sim::Cycle start = std::max(now, bank_free_at_[bank]);
    const sim::Cycle first_data = start + core_latency;
    bank_free_at_[bank] = first_data + beats; // data occupies the bank
    return first_data - now;
}

} // namespace realm::mem
