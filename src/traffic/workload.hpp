/// \file
/// \brief Memory-operation workloads replayed by `CoreModel`.
///
/// A workload is the interconnect-visible access stream of a program: the
/// loads/stores that miss the core's private caches, with the compute
/// cycles between them. Synthetic generators cover streaming, random, and
/// dependency-chained patterns; `SusanWorkload` (susan.hpp) generates the
/// trace of a real MiBench image kernel.
#pragma once

#include "axi/types.hpp"
#include "sim/rng.hpp"

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace realm::traffic {

/// One interconnect-visible memory operation.
struct MemOp {
    enum class Kind : std::uint8_t { kLoad, kStore };

    Kind kind = Kind::kLoad;
    axi::Addr addr = 0;
    std::uint32_t bytes = 8;
    /// Compute cycles the core spends before issuing this operation.
    std::uint32_t compute_cycles = 0;
};

/// Sequence of memory operations consumed by a core model.
class Workload {
public:
    virtual ~Workload() = default;

    /// Next operation, or nullopt when the program finished.
    virtual std::optional<MemOp> next() = 0;

    /// Restarts the stream from the beginning.
    virtual void restart() = 0;

    /// Total operations the stream will produce (0 = unknown/unbounded).
    [[nodiscard]] virtual std::uint64_t total_ops() const { return 0; }
};

/// Pre-recorded operation list (also the output format of trace generators).
class TraceWorkload : public Workload {
public:
    explicit TraceWorkload(std::vector<MemOp> ops) : ops_{std::move(ops)} {}

    std::optional<MemOp> next() override {
        if (pos_ >= ops_.size()) { return std::nullopt; }
        return ops_[pos_++];
    }
    void restart() override { pos_ = 0; }
    [[nodiscard]] std::uint64_t total_ops() const override { return ops_.size(); }

    [[nodiscard]] const std::vector<MemOp>& ops() const noexcept { return ops_; }

private:
    std::vector<MemOp> ops_;
    std::size_t pos_ = 0;
};

/// Sequential sweep over [base, base+bytes): a memcpy/stream kernel.
class StreamWorkload : public Workload {
public:
    struct Config {
        axi::Addr base = 0;
        std::uint64_t bytes = 4096;
        std::uint32_t op_bytes = 8;
        std::uint32_t stride_bytes = 8;
        std::uint32_t compute_cycles = 0;
        /// Stores per 16 operations (0 = read-only, 16 = write-only).
        std::uint32_t store_ratio16 = 0;
        std::uint32_t repeat = 1;
    };

    explicit StreamWorkload(Config cfg) : cfg_{cfg} {}

    std::optional<MemOp> next() override;
    void restart() override {
        offset_ = 0;
        iteration_ = 0;
        op_index_ = 0;
    }
    [[nodiscard]] std::uint64_t total_ops() const override {
        return (cfg_.bytes / cfg_.stride_bytes) * cfg_.repeat;
    }

private:
    Config cfg_;
    std::uint64_t offset_ = 0;
    std::uint32_t iteration_ = 0;
    std::uint64_t op_index_ = 0;
};

/// Uniform-random accesses over a range (cache-hostile traffic).
class RandomWorkload : public Workload {
public:
    struct Config {
        axi::Addr base = 0;
        std::uint64_t bytes = 1 << 20;
        std::uint32_t op_bytes = 8;
        std::uint32_t compute_cycles = 0;
        std::uint32_t store_ratio16 = 4;
        std::uint64_t num_ops = 10000;
        std::uint64_t seed = 1;
    };

    explicit RandomWorkload(Config cfg) : cfg_{cfg}, rng_{cfg.seed} {}

    std::optional<MemOp> next() override;
    void restart() override {
        rng_.reseed(cfg_.seed);
        issued_ = 0;
    }
    [[nodiscard]] std::uint64_t total_ops() const override { return cfg_.num_ops; }

private:
    Config cfg_;
    sim::Rng rng_;
    std::uint64_t issued_ = 0;
};

/// Dependent-load chain (each address comes from the previous load):
/// latency-bound traffic, the worst case for contended interconnects.
class PointerChaseWorkload : public Workload {
public:
    struct Config {
        axi::Addr base = 0;
        std::uint64_t slots = 1024;     ///< chain length (8-byte slots)
        std::uint32_t hops = 4096;      ///< loads to issue
        std::uint64_t seed = 7;
    };

    explicit PointerChaseWorkload(Config cfg);

    std::optional<MemOp> next() override;
    void restart() override {
        hop_ = 0;
        cursor_ = 0;
    }
    [[nodiscard]] std::uint64_t total_ops() const override { return cfg_.hops; }

    /// The permutation backing the chain; tests use it to pre-load memory.
    [[nodiscard]] const std::vector<std::uint64_t>& chain() const noexcept { return chain_; }

private:
    Config cfg_;
    std::vector<std::uint64_t> chain_;
    std::uint32_t hop_ = 0;
    std::uint64_t cursor_ = 0;
};

} // namespace realm::traffic
