/// \file
/// \brief ABE-style burst equalizer — the related-work baseline [12]
///        (Restuccia et al., "Is your bus arbiter really fair?").
///
/// The AXI burst equalizer restores round-robin fairness by enforcing a
/// nominal burst size and a maximum number of outstanding transactions per
/// manager — i.e. the *fragmentation* third of AXI-REALM without credits,
/// monitoring, or write buffering. Implemented as a thin composition over
/// the same `GranularBurstSplitter` so the comparison in
/// `bench_baseline_equalizer` isolates exactly what the M&R unit adds:
/// fairness is restored, but no bandwidth share can be *guaranteed* and a
/// stalling writer can still reserve downstream W bandwidth.
#pragma once

#include "axi/channel.hpp"
#include "realm/splitter.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <deque>

namespace realm::rt {

struct BurstEqualizerConfig {
    std::uint32_t nominal_beats = 16; ///< enforced burst size
    std::uint32_t max_outstanding = 4;
};

class BurstEqualizer : public sim::Component {
public:
    BurstEqualizer(sim::SimContext& ctx, std::string name, axi::AxiChannel& upstream,
                   axi::AxiChannel& downstream, BurstEqualizerConfig config = {});

    void reset() override;
    void tick() override;

    [[nodiscard]] const GranularBurstSplitter& splitter() const noexcept {
        return splitter_;
    }
    [[nodiscard]] std::uint32_t outstanding() const noexcept { return outstanding_; }

private:
    void update_activity();

    axi::SubordinateView up_;
    axi::ManagerView down_;
    BurstEqualizerConfig cfg_;
    GranularBurstSplitter splitter_;

    /// Pending child write-address flits awaiting emission.
    std::deque<axi::AwFlit> child_aw_queue_;
    /// Child-burst W bookkeeping (beats per child, in order).
    std::deque<std::uint32_t> w_child_beats_;
    std::uint32_t w_beat_in_child_ = 0;
    std::uint32_t outstanding_ = 0;
};

} // namespace realm::rt
