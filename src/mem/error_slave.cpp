#include "mem/error_slave.hpp"

namespace realm::mem {

ErrorSlave::ErrorSlave(sim::SimContext& ctx, std::string name, axi::AxiChannel& channel)
    : Component{ctx, std::move(name)}, port_{channel} {}

void ErrorSlave::reset() {
    writes_.clear();
    reads_.clear();
    errors_ = 0;
}

void ErrorSlave::tick() {
    if (port_.has_aw()) {
        const axi::AwFlit aw = port_.recv_aw();
        writes_.push_back(PendingWrite{aw.id, aw.beats()});
    }
    if (port_.has_ar()) {
        const axi::ArFlit ar = port_.recv_ar();
        reads_.push_back(PendingRead{ar.id, ar.beats()});
    }
    // Swallow write data; respond once the burst is complete.
    if (!writes_.empty() && writes_.front().beats_left > 0 && port_.has_w()) {
        const axi::WFlit w = port_.recv_w();
        PendingWrite& pw = writes_.front();
        --pw.beats_left;
        if (pw.beats_left == 0 || w.last) { pw.beats_left = 0; }
    }
    if (!writes_.empty() && writes_.front().beats_left == 0 && port_.can_send_b()) {
        axi::BFlit b;
        b.id = writes_.front().id;
        b.resp = axi::Resp::kDecErr;
        port_.send_b(b);
        writes_.pop_front();
        ++errors_;
    }
    if (!reads_.empty() && port_.can_send_r()) {
        PendingRead& pr = reads_.front();
        axi::RFlit r;
        r.id = pr.id;
        r.resp = axi::Resp::kDecErr;
        --pr.beats_left;
        r.last = pr.beats_left == 0;
        port_.send_r(r);
        if (r.last) {
            reads_.pop_front();
            ++errors_;
        }
    }
}

} // namespace realm::mem
