/// \file
/// \brief Core AXI4 protocol types shared by all layers.
///
/// Follows the AMBA AXI4 specification (ARM IHI 0022, issue J) naming:
/// managers issue requests on AW/W/AR, subordinates respond on B/R.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace realm::axi {

/// Byte address on the system bus.
using Addr = std::uint64_t;

/// Transaction identifier. Interconnect stages may widen IDs by prepending
/// manager-port bits (see `realm::ic::AxiMux`); 32 bits is ample for models.
using IdT = std::uint32_t;

/// AxBURST encoding.
enum class Burst : std::uint8_t {
    kFixed = 0, ///< Same address every beat (e.g. FIFO register).
    kIncr = 1,  ///< Incrementing; the common case.
    kWrap = 2,  ///< Wraps at an aligned boundary (cache line fills).
};

/// xRESP encoding.
enum class Resp : std::uint8_t {
    kOkay = 0,
    kExOkay = 1,
    kSlvErr = 2,
    kDecErr = 3,
};

/// Maximum data bus width supported by the model: 512 bit.
inline constexpr std::size_t kMaxDataBytes = 64;

/// Maximum beats in one AXI4 burst (INCR): AxLEN is 8 bit.
inline constexpr std::uint32_t kMaxBurstBeats = 256;

/// AXI4 bursts must not cross 4 KiB boundaries.
inline constexpr Addr kAxi4BoundaryBytes = 4096;

/// One beat of bus data. Only the first `bus width` bytes are meaningful;
/// carrying the maximum keeps flits trivially copyable.
struct Payload {
    std::array<std::uint8_t, kMaxDataBytes> bytes{};
};

/// Byte-lane strobe for write beats (bit i qualifies byte lane i).
using Strb = std::uint64_t;

/// AxCACHE bit 1: a modifiable transaction may be split/merged by the
/// interconnect. Non-modifiable bursts of <= 16 beats must pass intact
/// (AXI4 spec; the granular burst splitter honors this).
[[nodiscard]] constexpr bool is_modifiable(std::uint8_t cache) noexcept {
    return (cache & 0x2U) != 0;
}

/// Bytes carried per beat for an AxSIZE encoding.
[[nodiscard]] constexpr std::uint32_t bytes_per_beat(std::uint8_t size) noexcept {
    return std::uint32_t{1} << size;
}

/// Merges two responses: the "worst" response wins. Used when coalescing
/// write responses of fragmented bursts (DECERR > SLVERR > OKAY; EXOKAY
/// only survives if both halves were EXOKAY).
[[nodiscard]] constexpr Resp merge_resp(Resp a, Resp b) noexcept {
    if (a == Resp::kDecErr || b == Resp::kDecErr) { return Resp::kDecErr; }
    if (a == Resp::kSlvErr || b == Resp::kSlvErr) { return Resp::kSlvErr; }
    if (a == Resp::kExOkay && b == Resp::kExOkay) { return Resp::kExOkay; }
    return Resp::kOkay;
}

/// Human-readable names (diagnostics).
[[nodiscard]] constexpr const char* to_string(Burst b) noexcept {
    switch (b) {
    case Burst::kFixed: return "FIXED";
    case Burst::kIncr: return "INCR";
    case Burst::kWrap: return "WRAP";
    }
    return "?";
}

[[nodiscard]] constexpr const char* to_string(Resp r) noexcept {
    switch (r) {
    case Resp::kOkay: return "OKAY";
    case Resp::kExOkay: return "EXOKAY";
    case Resp::kSlvErr: return "SLVERR";
    case Resp::kDecErr: return "DECERR";
    }
    return "?";
}

} // namespace realm::axi
