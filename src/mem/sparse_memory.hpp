/// \file
/// \brief Sparse byte-addressable backing store (zero-initialized pages).
#pragma once

#include "axi/types.hpp"

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>

namespace realm::mem {

/// A 64-bit byte-addressable memory image backed by 4 KiB pages allocated
/// on first touch. Reads of untouched pages return zeros without allocating.
class SparseMemory {
public:
    static constexpr std::size_t kPageBytes = 4096;

    /// Copies `out.size()` bytes starting at `addr` into `out`.
    void read(axi::Addr addr, std::span<std::uint8_t> out) const;

    /// Writes `in` starting at `addr`. `strb` bit i qualifies byte i of `in`
    /// (repeating every 64 bytes for longer spans).
    void write(axi::Addr addr, std::span<const std::uint8_t> in, axi::Strb strb = ~axi::Strb{0});

    /// Convenience scalar accessors (little-endian).
    [[nodiscard]] std::uint64_t read_u64(axi::Addr addr) const;
    void write_u64(axi::Addr addr, std::uint64_t value);
    [[nodiscard]] std::uint8_t read_u8(axi::Addr addr) const;
    void write_u8(axi::Addr addr, std::uint8_t value);

    /// Number of pages currently allocated (introspection).
    [[nodiscard]] std::size_t page_count() const noexcept { return pages_.size(); }

    /// Drops all contents.
    void clear() noexcept { pages_.clear(); }

private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    [[nodiscard]] const Page* find_page(axi::Addr page_index) const noexcept;
    Page& touch_page(axi::Addr page_index);

    std::unordered_map<axi::Addr, Page> pages_;
};

} // namespace realm::mem
