#include "scenario/scenario.hpp"

#include "sim/check.hpp"

#include <chrono>
#include <memory>
#include <utility>

namespace realm::scenario {

namespace {

/// Builds the victim workload; for Susan this also returns the generator's
/// input image so the caller can seed DRAM with it.
std::unique_ptr<traffic::Workload> make_victim(const VictimConfig& cfg,
                                               std::uint64_t seed,
                                               soc::CheshireSoc& soc) {
    switch (cfg.kind) {
    case VictimConfig::Kind::kSusan: {
        traffic::SusanTraceGenerator gen{cfg.susan};
        const auto& img = gen.input_image();
        for (std::size_t i = 0; i < img.size(); ++i) {
            soc.dram_image().write_u8(cfg.susan.image_base + i, img[i]);
        }
        soc.warm_llc(cfg.susan.image_base, img.size());
        soc.warm_llc(cfg.susan.out_base, img.size());
        soc.warm_llc(cfg.susan.lut_base, 4096);
        return std::make_unique<traffic::TraceWorkload>(gen.take_ops());
    }
    case VictimConfig::Kind::kStream:
        return std::make_unique<traffic::StreamWorkload>(cfg.stream);
    case VictimConfig::Kind::kRandom: {
        traffic::RandomWorkload::Config rnd = cfg.random;
        rnd.seed = seed; // the derived per-point seed, not a shared default
        return std::make_unique<traffic::RandomWorkload>(rnd);
    }
    }
    REALM_EXPECTS(false, "unknown victim kind");
    return nullptr;
}

} // namespace

ScenarioResult run_scenario(const ScenarioConfig& cfg, std::string label) {
    const auto wall_start = std::chrono::steady_clock::now();
    REALM_EXPECTS(cfg.interference.size() <= cfg.soc.num_dsa,
                  "more interference DMAs than DSA ports");

    ScenarioResult res;
    res.label = label.empty() ? cfg.name : std::move(label);
    res.seed = cfg.seed;

    sim::SimContext ctx;
    ctx.set_scheduler(cfg.scheduler);
    soc::CheshireSoc soc{ctx, cfg.soc};

    // --- Memory preconditioning -----------------------------------------
    auto victim_workload = make_victim(cfg.victim, cfg.seed, soc);
    for (const PreloadSpan& span : cfg.preload) {
        for (std::uint64_t off = 0; off < span.bytes; off += 8) {
            soc.dram_image().write_u64(span.base + off, off * span.multiplier);
        }
        if (span.warm) { soc.warm_llc(span.base, span.bytes); }
    }

    // --- Boot-flow regulation -------------------------------------------
    if (!cfg.boot_plans.empty()) {
        std::vector<soc::CheshireSoc::BootRegionPlan> plans;
        plans.reserve(cfg.boot_plans.size());
        for (const RegionPlan& p : cfg.boot_plans) {
            plans.push_back({p.budget_bytes, p.period_cycles, p.fragment_beats});
        }
        soc.queue_boot_script(plans);
        res.boot_ok = ctx.run_until([&] { return soc.boot_master().done(); }, 10000);
        if (!res.boot_ok) { return res; }
    }
    if (cfg.throttle_dsa && soc.realm_present()) {
        for (std::uint32_t i = 0; i < cfg.soc.num_dsa; ++i) {
            soc.dsa_realm(i).set_throttle(true);
        }
    }
    if (cfg.monitor_llc_on_core && soc.realm_present()) {
        soc.core_realm().set_region(
            0, rt::RegionConfig{cfg.soc.dram_base, cfg.soc.dram_base + cfg.soc.dram_size,
                                /*budget=*/0, /*period=*/0});
    }

    // --- Interference ----------------------------------------------------
    std::vector<std::unique_ptr<traffic::DmaEngine>> dmas;
    for (std::size_t i = 0; i < cfg.interference.size(); ++i) {
        const InterferenceConfig& irq = cfg.interference[i];
        dmas.push_back(std::make_unique<traffic::DmaEngine>(
            ctx, "dsa_dma" + std::to_string(i), soc.dsa_port(i), irq.dma));
        dmas.back()->push_job(traffic::DmaJob{irq.src, irq.dst, irq.bytes, irq.loop});
    }
    if (!dmas.empty() && cfg.warmup_cycles > 0) { ctx.run(cfg.warmup_cycles); }

    // --- Victim ----------------------------------------------------------
    traffic::CoreModel core{ctx, "core", soc.core_port(), *victim_workload};
    const sim::Cycle start = ctx.now();
    const std::uint64_t dma_bytes_before = dmas.empty() ? 0 : dmas[0]->bytes_read();
    res.timed_out = !ctx.run_until([&] { return core.done(); }, cfg.max_cycles);
    // On timeout the victim never finished; charge the whole window instead
    // of underflowing against a zero finish_cycle.
    const sim::Cycle victim_end = res.timed_out ? ctx.now() : core.finish_cycle();
    if (cfg.cooldown_cycles > 0) { ctx.run(cfg.cooldown_cycles); }

    // --- Harvest ---------------------------------------------------------
    res.run_cycles = victim_end - start;
    res.ops = core.loads_retired() + core.stores_retired();
    res.load_lat_mean = core.load_latency().mean();
    res.load_lat_min = core.load_latency().min();
    res.load_lat_max = core.load_latency().max();
    res.load_lat_p99 = core.load_latency().quantile(0.99);
    res.store_lat_mean = core.store_latency().mean();
    res.store_lat_max = core.store_latency().max();

    if (!dmas.empty()) {
        res.dma_bytes = dmas[0]->bytes_read() - dma_bytes_before;
        res.dma_read_bw = res.run_cycles == 0
                              ? 0.0
                              : static_cast<double>(res.dma_bytes) /
                                    static_cast<double>(res.run_cycles);
        if (soc.realm_present()) {
            const rt::RealmUnit& unit = soc.dsa_realm(0);
            res.dma_depletions = unit.mr().region(0).depletion_events;
            res.dma_isolation_cycles = unit.mr().isolation_cycles();
            res.dma_throttle_stalls = unit.throttle_stalls();
            res.dma_cut_through = unit.write_buffer().cut_through_bursts();
            res.dma_mr_bytes_total = unit.mr().region(0).bytes_total;
            res.dma_mr_read_lat_mean = unit.mr().region(0).read_latency.mean();
        }
    }
    if (soc.realm_present()) {
        res.core_mr_read_lat_mean = soc.core_realm().mr().region(0).read_latency.mean();
        res.core_mr_write_lat_max = soc.core_realm().mr().region(0).write_latency.max();
    }
    res.xbar_w_stalls = soc.xbar().w_stall_cycles(0);

    res.ticks_executed = ctx.ticks_executed();
    res.ticks_skipped = ctx.ticks_skipped();
    res.fast_forwarded_cycles = ctx.fast_forwarded_cycles();
    res.simulated_cycles = ctx.now();
    res.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    return res;
}

} // namespace realm::scenario
