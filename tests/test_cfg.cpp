/// Unit tests for the configuration layer: bus guard, register file, and the
/// AXI-to-register adapter.
#include "axi/builder.hpp"
#include "cfg/axi_to_reg.hpp"
#include "cfg/bus_guard.hpp"
#include "cfg/realm_regfile.hpp"
#include "mem/axi_mem_slave.hpp"
#include "realm/realm_unit.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace realm::cfg {
namespace {

using RF = RealmRegFile;

class EchoTarget final : public RegTarget {
public:
    RegRsp reg_access(const RegReq& req) override {
        if (req.write) {
            last_write = req;
            return RegRsp::ok();
        }
        return RegRsp::ok(static_cast<std::uint32_t>(req.addr));
    }
    RegReq last_write{};
};

TEST(BusGuard, UnclaimedRejectsEverythingButGuard) {
    EchoTarget inner;
    BusGuard guard{inner};
    EXPECT_TRUE(guard.reg_access(RegReq{0x10, false, 0, 1}).error);
    EXPECT_TRUE(guard.reg_access(RegReq{0x10, true, 5, 1}).error);
    const RegRsp read_guard = guard.reg_access(RegReq{BusGuard::kGuardOffset, false, 0, 1});
    EXPECT_FALSE(read_guard.error);
    EXPECT_EQ(read_guard.rdata, BusGuard::kUnclaimed);
    EXPECT_EQ(guard.rejected_accesses(), 2U);
}

TEST(BusGuard, ClaimKeysOnTid) {
    EchoTarget inner;
    BusGuard guard{inner};
    EXPECT_FALSE(guard.reg_access(RegReq{BusGuard::kGuardOffset, true, 0, 42}).error);
    EXPECT_TRUE(guard.claimed());
    EXPECT_EQ(guard.owner(), 42U);
    // Owner may access; anyone else may not.
    EXPECT_FALSE(guard.reg_access(RegReq{0x20, true, 7, 42}).error);
    EXPECT_EQ(inner.last_write.addr, 0x20U);
    EXPECT_TRUE(guard.reg_access(RegReq{0x20, true, 7, 43}).error);
}

TEST(BusGuard, HandoverTransfersExclusiveOwnership) {
    EchoTarget inner;
    BusGuard guard{inner};
    (void)guard.reg_access(RegReq{BusGuard::kGuardOffset, true, 0, 1});
    // Handover to TID 9.
    EXPECT_FALSE(guard.reg_access(RegReq{BusGuard::kGuardOffset, true, 9, 1}).error);
    EXPECT_EQ(guard.owner(), 9U);
    EXPECT_TRUE(guard.reg_access(RegReq{0x20, false, 0, 1}).error) << "old owner locked out";
    EXPECT_FALSE(guard.reg_access(RegReq{0x20, false, 0, 9}).error);
    EXPECT_EQ(guard.handovers(), 1U);
}

TEST(BusGuard, ForeignClaimAttemptRejected) {
    EchoTarget inner;
    BusGuard guard{inner};
    (void)guard.reg_access(RegReq{BusGuard::kGuardOffset, true, 0, 1});
    EXPECT_TRUE(guard.reg_access(RegReq{BusGuard::kGuardOffset, true, 5, 2}).error)
        << "non-owner cannot steal the claim";
    EXPECT_EQ(guard.owner(), 1U);
}

TEST(BusGuard, ResetReleasesClaim) {
    EchoTarget inner;
    BusGuard guard{inner};
    (void)guard.reg_access(RegReq{BusGuard::kGuardOffset, true, 0, 1});
    guard.reset();
    EXPECT_FALSE(guard.claimed());
    const RegRsp r = guard.reg_access(RegReq{BusGuard::kGuardOffset, false, 0, 7});
    EXPECT_EQ(r.rdata, BusGuard::kUnclaimed);
}

/// Fixture with two REALM units in front of memories, driven through the
/// register file by direct RegReq calls.
class RegFileFixture : public ::testing::Test {
protected:
    RegFileFixture() {
        for (int i = 0; i < 2; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            // Slaves sit directly on the downstream channels; they tick
            // before the units, satisfying the response-passthrough order.
            slaves[idx] = std::make_unique<mem::AxiMemSlave>(
                ctx, "mem" + std::to_string(i), *downs[idx],
                std::make_unique<mem::SramBackend>(1, 1), mem::AxiMemSlaveConfig{8, 8, 0});
            units[idx] = std::make_unique<rt::RealmUnit>(ctx, "u" + std::to_string(i),
                                                         *ups[idx], *downs[idx]);
        }
        regfile = std::make_unique<RealmRegFile>(
            std::vector<rt::RealmUnit*>{units[0].get(), units[1].get()});
    }

    sim::SimContext ctx;
    std::array<std::unique_ptr<axi::AxiChannel>, 2> ups{
        std::make_unique<axi::AxiChannel>(ctx, "up0"),
        std::make_unique<axi::AxiChannel>(ctx, "up1")};
    std::array<std::unique_ptr<axi::AxiChannel>, 2> downs{
        std::make_unique<axi::AxiChannel>(ctx, "down0", 2, true),
        std::make_unique<axi::AxiChannel>(ctx, "down1", 2, true)};
    std::array<std::unique_ptr<mem::AxiMemSlave>, 2> slaves;
    std::array<std::unique_ptr<rt::RealmUnit>, 2> units;
    std::unique_ptr<RealmRegFile> regfile;

    RegRsp write(axi::Addr addr, std::uint32_t v) {
        return regfile->reg_access(RegReq{addr, true, v, 0});
    }
    RegRsp read(axi::Addr addr) { return regfile->reg_access(RegReq{addr, false, 0, 0}); }
};

TEST_F(RegFileFixture, IdentificationRegisters) {
    EXPECT_EQ(read(RF::kNumUnitsOffset).rdata, 2U);
    EXPECT_EQ(read(RF::kNumRegionsOffset).rdata, 2U);
    EXPECT_TRUE(write(RF::kNumUnitsOffset, 1).error) << "RO register";
}

TEST_F(RegFileFixture, FragmentationReadWrite) {
    EXPECT_EQ(read(RF::unit_reg(0, RF::kFragment)).rdata, 256U);
    EXPECT_FALSE(write(RF::unit_reg(0, RF::kFragment), 8).error);
    EXPECT_EQ(read(RF::unit_reg(0, RF::kFragment)).rdata, 8U);
    EXPECT_EQ(units[0]->fragmentation(), 8U);
    EXPECT_EQ(units[1]->fragmentation(), 256U) << "units are independent";
    EXPECT_TRUE(write(RF::unit_reg(0, RF::kFragment), 0).error);
    EXPECT_TRUE(write(RF::unit_reg(0, RF::kFragment), 300).error);
}

TEST_F(RegFileFixture, CtrlBitsDriveUnit) {
    EXPECT_FALSE(write(RF::unit_reg(1, RF::kCtrl),
                       RF::kCtrlEnable | RF::kCtrlIsolate | RF::kCtrlThrottle)
                     .error);
    EXPECT_TRUE(units[1]->isolation().cause_active(rt::IsolationCause::kUser));
    EXPECT_TRUE(units[1]->mr().throttle_enabled());
    const std::uint32_t v = read(RF::unit_reg(1, RF::kCtrl)).rdata;
    EXPECT_EQ(v, RF::kCtrlEnable | RF::kCtrlIsolate | RF::kCtrlThrottle);
}

TEST_F(RegFileFixture, RegionProgrammingReachesUnit) {
    const axi::Addr base = RF::region_reg(0, 1, RF::kStartLo);
    EXPECT_FALSE(write(base, 0x8000'0000U).error);
    EXPECT_FALSE(write(RF::region_reg(0, 1, RF::kStartHi), 0x1).error);
    EXPECT_FALSE(write(RF::region_reg(0, 1, RF::kEndLo), 0x9000'0000U).error);
    EXPECT_FALSE(write(RF::region_reg(0, 1, RF::kEndHi), 0x1).error);
    EXPECT_FALSE(write(RF::region_reg(0, 1, RF::kBudgetLo), 4096).error);
    EXPECT_FALSE(write(RF::region_reg(0, 1, RF::kPeriodLo), 1000).error);
    const rt::RegionState& r = units[0]->mr().region(1);
    EXPECT_EQ(r.config.start, 0x1'8000'0000ULL);
    EXPECT_EQ(r.config.end, 0x1'9000'0000ULL);
    EXPECT_EQ(r.config.budget_bytes, 4096U);
    EXPECT_EQ(r.config.period_cycles, 1000U);
    // Read-back through the register file.
    EXPECT_EQ(read(RF::region_reg(0, 1, RF::kStartHi)).rdata, 0x1U);
    EXPECT_EQ(read(RF::region_reg(0, 1, RF::kBudgetLo)).rdata, 4096U);
    EXPECT_EQ(read(RF::region_reg(0, 1, RF::kCredit)).rdata, 4096U);
}

TEST_F(RegFileFixture, StatusReflectsState) {
    std::uint32_t v = read(RF::unit_reg(0, RF::kStatus)).rdata;
    EXPECT_EQ(v & 0xF, static_cast<std::uint32_t>(rt::RealmState::kReady));
    (void)write(RF::unit_reg(0, RF::kCtrl), RF::kCtrlEnable | RF::kCtrlIsolate);
    v = read(RF::unit_reg(0, RF::kStatus)).rdata;
    EXPECT_EQ(v & 0xF, static_cast<std::uint32_t>(rt::RealmState::kIsolatedUser));
    EXPECT_TRUE((v >> 4) & 1) << "fully-isolated bit";
}

TEST_F(RegFileFixture, OutOfRangeAccessesError) {
    EXPECT_TRUE(read(RF::unit_reg(2, RF::kCtrl)).error) << "only two units";
    EXPECT_TRUE(read(RF::region_reg(0, 2, RF::kStartLo)).error) << "only two regions";
    EXPECT_TRUE(read(0x0C).error) << "hole in the per-system block";
    EXPECT_TRUE(read(RF::unit_reg(0, RF::kCtrl) + 2).error) << "unaligned";
    EXPECT_TRUE(write(RF::unit_reg(0, RF::kStatus), 1).error) << "RO register";
}

TEST_F(RegFileFixture, StatisticsReadable) {
    // Drive one read through unit 0, then check counters via registers.
    axi::ManagerView mgr{*ups[0]};
    units[0]->set_region(0, [] {
        rt::RegionConfig r;
        r.start = 0;
        r.end = 0x10000;
        return r;
    }());
    mgr.send_ar(axi::make_ar(1, 0x100, 4, 3));
    (void)test::collect_read_burst(ctx, *ups[0], 4);
    EXPECT_EQ(read(RF::unit_reg(0, RF::kReadsAcc)).rdata, 1U);
    EXPECT_EQ(read(RF::region_reg(0, 0, RF::kTxnCount)).rdata, 1U);
    EXPECT_EQ(read(RF::region_reg(0, 0, RF::kBytesPeriod)).rdata, 32U);
    EXPECT_GT(read(RF::region_reg(0, 0, RF::kRdLatMax)).rdata, 3U);
}

// --- AxiToReg -----------------------------------------------------------------

class AxiToRegFixture : public ::testing::Test {
protected:
    AxiToRegFixture() : guard{echo} {
        adapter = std::make_unique<AxiToReg>(ctx, "a2r", ch, guard, /*base=*/0x1000);
    }
    sim::SimContext ctx;
    axi::AxiChannel ch{ctx, "cfg"};
    EchoTarget echo;
    BusGuard guard;
    std::unique_ptr<AxiToReg> adapter;
};

TEST_F(AxiToRegFixture, SingleBeatWriteAndReadWithGuard) {
    axi::ManagerView mgr{ch};
    // Claim (TID = 7) through AXI.
    mgr.send_aw(axi::make_aw(7, 0x1000, 1, 3));
    ctx.step();
    axi::WFlit w;
    w.last = true;
    std::uint32_t claim = 0;
    std::memcpy(w.data.bytes.data(), &claim, 4);
    mgr.send_w(w);
    const axi::BFlit b = test::collect_b(ctx, ch);
    EXPECT_EQ(b.resp, axi::Resp::kOkay);
    EXPECT_TRUE(guard.claimed());
    EXPECT_EQ(guard.owner(), 7U);

    // Owner reads a register: echo target returns the offset.
    mgr.send_ar(axi::make_ar(7, 0x1020, 1, 3));
    const axi::RFlit r = test::collect_read_burst(ctx, ch, 1);
    EXPECT_EQ(r.resp, axi::Resp::kOkay);
    std::uint32_t v = 0;
    std::memcpy(&v, r.data.bytes.data(), 4);
    EXPECT_EQ(v, 0x20U);
}

TEST_F(AxiToRegFixture, ForeignTidGetsSlverr) {
    axi::ManagerView mgr{ch};
    mgr.send_aw(axi::make_aw(7, 0x1000, 1, 3));
    ctx.step();
    axi::WFlit w;
    w.last = true;
    mgr.send_w(w);
    (void)test::collect_b(ctx, ch);
    // TID 8 tries to read config.
    mgr.send_ar(axi::make_ar(8, 0x1020, 1, 3));
    const axi::RFlit r = test::collect_read_burst(ctx, ch, 1);
    EXPECT_EQ(r.resp, axi::Resp::kSlvErr);
}

TEST_F(AxiToRegFixture, BurstAccessRejectedProtocolClean) {
    axi::ManagerView mgr{ch};
    mgr.send_ar(axi::make_ar(1, 0x1000, 4, 3));
    const axi::RFlit last = test::collect_read_burst(ctx, ch, 4);
    EXPECT_EQ(last.resp, axi::Resp::kSlvErr);
    EXPECT_TRUE(last.last) << "burst must terminate legally";
}

} // namespace
} // namespace realm::cfg
