/// \file
/// \brief One DoS cell, three fabrics: the interconnect-agnostic claim as a
///        side-by-side table.
///
/// Runs the same 2-attacker hog cell — identical victim, identical attacker
/// DMAs, identical REALM programming — on the Cheshire crossbar, an 8-node
/// ring, and a 2x4 mesh, undefended and budget-defended, using the smoke
/// sweeps from the registry. The absolute numbers differ per fabric (an LLC
/// in front of DRAM vs. flat SRAM NoC nodes), but the *story* is the same
/// everywhere: the undefended cell wrecks the victim's tail latency, the
/// budgeted cell restores it. That is Figure 1 of the paper, executable.
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#include <cstdio>
#include <sstream>

using namespace realm;
using namespace realm::scenario;

int main() {
    std::puts("== The same DoS cell on three fabrics ==\n");
    std::printf("%-10s %-18s %10s %10s %12s %10s\n", "fabric", "cell", "lat_mean",
                "lat_max", "dma[B/cyc]", "hops");

    const std::pair<const char*, const char*> fabrics[] = {
        {"crossbar", "xbar-dos-smoke"},
        {"ring", "ring-dos-smoke"},
        {"mesh", "mesh-dos-smoke"},
    };
    for (const auto& [fabric, sweep_name] : fabrics) {
        Sweep sweep = make_sweep(sweep_name);
        // Points 4 and 5 of every smoke sweep: 2atk/hog/none and
        // 2atk/hog/budget (same labels across fabrics by construction).
        Sweep pair;
        pair.name = sweep.name;
        pair.points = {sweep.points.at(4), sweep.points.at(5)};
        const auto results = ScenarioRunner{RunnerOptions{.threads = 2}}.run(pair);
        for (const ScenarioResult& r : results) {
            std::printf("%-10s %-18s %10.2f %10llu %12.2f %10llu\n", fabric,
                        r.label.c_str(), r.load_lat_mean,
                        static_cast<unsigned long long>(
                            worst_case_victim_latency(r)),
                        r.dma_read_bw,
                        static_cast<unsigned long long>(r.fabric_hops));
        }
    }

    std::puts("\nthe same RegionPlan tames the same attackers on a crossbar, a ring,");
    std::puts("and an XY-routed mesh — regulation composes with the fabric, not");
    std::puts("against it. Full matrices: scenario_sweep {xbar,ring,mesh}-dos-matrix");
    std::puts("--report PATH.md renders the reviewable attacker x mode tables.");
    return 0;
}
