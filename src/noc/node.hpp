/// \file
/// \brief One ring-NoC node: router + AXI network interface unit.
///
/// Each node can host one local manager (whose channel the node terminates
/// as a subordinate) and one local subordinate (reached through per-source
/// egress channels and an `ic::AxiMux`, which enforces the usual
/// burst-granular W ordering). Rings are unidirectional with one-cycle
/// hops; forwarding has priority over injection. A request worm only
/// enters the ring once its end-to-end credits reserved the target
/// staging, so request ejection never stalls the ring head. The
/// NI bookkeeping (lane discipline, same-ID ordering, response
/// round-robin, credit accounting) lives in the fabric-shared `NocNi`.
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "noc/credit.hpp"
#include "noc/ni.hpp"
#include "noc/packet.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <vector>

namespace realm::noc {

class NocNode : public sim::Component {
public:
    /// \param node_id        position on the ring.
    /// \param map            node-level address map (addr -> node id).
    /// \param local_mgr      channel driven by the local manager (nullptr if
    ///                       the node hosts none).
    /// \param egress         per-source channels toward the local
    ///                       subordinate's mux (empty if none).
    /// \param req_in/out, rsp_in/out  ring links (owned by `NocRing`).
    /// \param fc             fabric flow-control configuration.
    /// \param book           end-to-end credit book (owned by `NocRing`).
    NocNode(sim::SimContext& ctx, std::string name, NodeId node_id,
            NodeId num_nodes, ic::AddrMap map, axi::AxiChannel* local_mgr,
            std::vector<axi::AxiChannel*> egress,
            NocLink& req_in, NocLink& req_out, NocLink& rsp_in, NocLink& rsp_out,
            const NocFlowConfig& fc, CreditBook* book);

    void reset() override;
    void tick() override;

    /// NI bookkeeping (reorder-stash introspection for invariant checks).
    [[nodiscard]] const NocNi& ni() const noexcept { return ni_; }

    /// \name Statistics
    ///@{
    [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }
    [[nodiscard]] std::uint64_t ejected() const noexcept { return ejected_; }
    [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
    [[nodiscard]] std::uint64_t ring_stall_cycles() const noexcept { return ring_stalls_; }
    ///@}

private:
    void ring_hop(NocLink& in, NocLink& out, bool request_ring);
    void inject_requests();
    void inject_responses();
    void update_activity();

    NodeId id_;
    ic::AddrMap map_;
    axi::AxiChannel* local_mgr_;
    std::vector<axi::AxiChannel*> egress_;
    NocLink* req_in_;
    NocLink* req_out_;
    NocLink* rsp_in_;
    NocLink* rsp_out_;

    NocNi ni_;

    std::uint64_t injected_ = 0;
    std::uint64_t ejected_ = 0;
    std::uint64_t forwarded_ = 0;
    std::uint64_t ring_stalls_ = 0;
};

} // namespace realm::noc
