/// Tests for the scenario engine: registry integrity, seed derivation,
/// thread-count-invariant parallel sweeps, and the JSON emitter.
#include "scenario/cli.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace realm::scenario {
namespace {

// --- Seed derivation (reproducible parallel runs) ----------------------------

TEST(DeriveSeed, StableAndDistinct) {
    EXPECT_EQ(sim::derive_seed("fig6a", 0), sim::derive_seed("fig6a", 0));
    EXPECT_NE(sim::derive_seed("fig6a", 0), sim::derive_seed("fig6a", 1));
    EXPECT_NE(sim::derive_seed("fig6a", 0), sim::derive_seed("fig6b", 0));
    // No degenerate zero seeds for the registered sweeps.
    for (const std::string& name : sweep_names()) {
        for (std::uint64_t i = 0; i < 16; ++i) {
            EXPECT_NE(sim::derive_seed(name, i), 0U);
        }
    }
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, KnowsTheFigureAndAblationSweeps) {
    for (const char* name : {"fig6a", "fig6b", "ablation-period", "ablation-throttle",
                             "ablation-dos", "random-mix", "idle-tail"}) {
        EXPECT_TRUE(has_sweep(name)) << name;
    }
    EXPECT_FALSE(has_sweep("nope"));
}

TEST(Registry, SweepPointsCarryDerivedSeeds) {
    const Sweep sweep = make_sweep("fig6b");
    ASSERT_EQ(sweep.points.size(), 6U);
    ASSERT_TRUE(sweep.baseline_index.has_value());
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        EXPECT_EQ(sweep.points[i].config.seed, sim::derive_seed("fig6b", i));
    }
    // Budget points: fragmentation 1, short period, decreasing budgets.
    EXPECT_EQ(sweep.points[1].config.boot_plans[1].fragment_beats, 1U);
    EXPECT_GT(sweep.points[1].config.boot_plans[1].budget_bytes,
              sweep.points[5].config.boot_plans[1].budget_bytes);
}

// --- End-to-end scenario run -------------------------------------------------

ScenarioConfig tiny_scenario() {
    Sweep sweep = make_sweep("random-mix");
    ScenarioConfig cfg = sweep.points[1].config; // frag 16, budgeted DMA
    cfg.victim.random.num_ops = 500;
    return cfg;
}

TEST(RunScenario, CompletesAndReportsVictimMetrics) {
    ScenarioConfig cfg = tiny_scenario();
    const ScenarioResult res = run_scenario(cfg, "tiny");
    EXPECT_EQ(res.label, "tiny");
    EXPECT_TRUE(res.boot_ok);
    EXPECT_FALSE(res.timed_out);
    EXPECT_EQ(res.ops, 500U);
    EXPECT_GT(res.run_cycles, 0U);
    EXPECT_GT(res.load_lat_mean, 0.0);
    EXPECT_GT(res.dma_bytes, 0U);
}

TEST(RunScenario, SeedSelectsTheRandomWorkload) {
    ScenarioConfig cfg = tiny_scenario();
    const ScenarioResult a = run_scenario(cfg);
    cfg.seed ^= 0xDEADBEEF;
    const ScenarioResult b = run_scenario(cfg);
    EXPECT_NE(a.run_cycles, b.run_cycles)
        << "different derived seeds must produce different random traffic";
    cfg.seed ^= 0xDEADBEEF;
    const ScenarioResult c = run_scenario(cfg);
    EXPECT_EQ(a.run_cycles, c.run_cycles) << "same seed must reproduce exactly";
}

// --- Parallel runner ---------------------------------------------------------

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.run_cycles, b.run_cycles);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.load_lat_mean, b.load_lat_mean);
    EXPECT_EQ(a.load_lat_max, b.load_lat_max);
    EXPECT_EQ(a.store_lat_mean, b.store_lat_mean);
    EXPECT_EQ(a.dma_bytes, b.dma_bytes);
    EXPECT_EQ(a.dma_depletions, b.dma_depletions);
    EXPECT_EQ(a.dma_isolation_cycles, b.dma_isolation_cycles);
    EXPECT_EQ(a.xbar_w_stalls, b.xbar_w_stalls);
    // Same scheduler on both sides: even the host-side evaluation counts
    // must line up, or the runs were not bit-identical.
    EXPECT_EQ(a.ticks_executed, b.ticks_executed);
    EXPECT_EQ(a.ticks_skipped, b.ticks_skipped);
    EXPECT_EQ(a.fast_forwarded_cycles, b.fast_forwarded_cycles);
}

TEST(ScenarioRunner, ThreadCountDoesNotChangeResults) {
    Sweep sweep = make_sweep("random-mix");
    for (SweepPoint& p : sweep.points) {
        p.config.victim.random.num_ops = 500; // keep the test quick
    }
    const std::vector<ScenarioResult> serial =
        ScenarioRunner{RunnerOptions{.threads = 1}}.run(sweep);
    const std::vector<ScenarioResult> parallel =
        ScenarioRunner{RunnerOptions{.threads = 4}}.run(sweep);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(sweep.points[i].label);
        expect_identical(serial[i], parallel[i]);
    }
}

TEST(ScenarioRunner, ResultsKeepPointOrder) {
    Sweep sweep = make_sweep("random-mix");
    for (SweepPoint& p : sweep.points) { p.config.victim.random.num_ops = 200; }
    const auto results = ScenarioRunner{RunnerOptions{.threads = 3}}.run(sweep);
    ASSERT_EQ(results.size(), sweep.points.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].label, sweep.points[i].label);
        EXPECT_EQ(results[i].seed, sweep.points[i].config.seed);
    }
}

// --- JSON emitter ------------------------------------------------------------

TEST(JsonOutput, EmitsOnePointPerResultWithEscaping) {
    Sweep sweep = make_sweep("random-mix");
    for (SweepPoint& p : sweep.points) { p.config.victim.random.num_ops = 100; }
    sweep.points[0].label = "weird \"label\"\n";
    const auto results = ScenarioRunner{}.run(sweep);
    std::ostringstream os;
    write_json(os, sweep, results);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"sweep\": \"random-mix\""), std::string::npos);
    EXPECT_NE(json.find("\\\"label\\\"\\n"), std::string::npos);
    EXPECT_NE(json.find("\"run_cycles\""), std::string::npos);
    std::size_t points = 0;
    for (std::size_t pos = json.find("\"label\""); pos != std::string::npos;
         pos = json.find("\"label\"", pos + 1)) {
        ++points;
    }
    EXPECT_EQ(points, results.size());
    // Balanced braces/brackets: a cheap structural sanity check (the CI
    // smoke run validates against a real JSON parser).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

} // namespace
} // namespace realm::scenario
