/// \file
/// \brief Online DoS-attacker detection: signals, per-manager verdicts and
/// scoring against scenario ground truth.
///
/// Each TxnMonitor evaluates four IMS-style threshold signals online:
///
///  - kBandwidth:    windowed bytes/cycle at or above a threshold -- the
///                   classic bandwidth hog running unopposed;
///  - kBackpressure: the manager's requests were held at the monitor boundary
///                   for at least a fraction of a window -- demand exceeding
///                   what the fabric grants, which is how both contended hogs
///                   and isolation-throttled overdrafters look from upstream;
///  - kWGap:         an accepted write burst whose manager stopped producing
///                   W beats while the channel could take them -- the
///                   W-stall protocol attack, defended or not;
///  - kOccupancy:    windowed mean in-demand bursts (reads AR..R-last, writes
///                   AW..W-last) at or above a threshold -- the
///                   contention-independent signature of a closed-loop hog,
///                   whose boundary *rate* collapses as the fabric saturates
///                   while its pipeline stays pinned full. Waiting on a late
///                   B response is excluded, so a victim queueing behind an
///                   attack is not blamed, and a blocking core can never
///                   average above 1.
///
/// A manager is flagged as soon as any signal fires; the flag cycle is a
/// deterministic function of simulated history (never of host scheduling), so
/// verdicts are bit-identical across schedulers and shard counts. Verdicts
/// are scored against `InterferenceConfig::hostile` ground truth per cell.
#pragma once

#include "sim/types.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace realm::mon {

/// Detection signal bitmask values.
enum Signal : std::uint8_t {
    kSignalNone = 0,
    kSignalBandwidth = 1,    ///< windowed bytes/cycle over threshold
    kSignalBackpressure = 2, ///< windowed held-handshake fraction over threshold
    kSignalWGap = 4,         ///< W-channel production gap inside an open burst
    kSignalOccupancy = 8,    ///< windowed mean outstanding bursts over threshold
};

/// Human-readable "+"-joined signal list, e.g. "bw+wgap"; "-" when none.
std::string signal_names(std::uint8_t mask);

/// One manager's detector outcome, paired with ground truth.
struct Verdict {
    bool hostile = false; ///< ground truth: configured as an attacker
    bool flagged = false; ///< detector verdict: flagged as an attacker
    std::uint8_t signals = kSignalNone;
    /// Cycles from monitor attach to the first firing signal (0 if never).
    sim::Cycle time_to_detect = 0;
};

/// Confusion counts over one scenario's managers.
struct DetectionScore {
    std::uint64_t true_positives = 0;  ///< hostile and flagged
    std::uint64_t false_positives = 0; ///< benign but flagged
    std::uint64_t false_negatives = 0; ///< hostile but never flagged
    /// Fastest time-to-detect over the true positives (0 when there are none).
    sim::Cycle first_detect = 0;
};

DetectionScore score_verdicts(const std::vector<Verdict>& verdicts);

} // namespace realm::mon
