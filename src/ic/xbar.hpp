/// \file
/// \brief Full AXI4 crossbar: M managers x S subordinates.
///
/// Modeled after burst-based open-source crossbars (e.g. the PULP
/// `axi_xbar` [19]): address decode per manager, round-robin arbitration
/// per subordinate at **burst granularity**, W-channel reservation at
/// AW-grant time, ID widening for stateless response routing, and AXI4
/// same-ID ordering stalls. One component, so a request crosses in one
/// cycle and a response in one cycle (the RTL's mostly-combinational
/// datapath plus one register cut).
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "ic/arb.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

namespace realm::ic {

/// Arbitration policy of the crossbar's per-subordinate request arbiters.
enum class XbarArbitration : std::uint8_t {
    kRoundRobin, ///< the paper's (and PULP axi_xbar's) fairness-oblivious RR
    /// Strict priority on the AxQOS field (RR among equal priorities) — the
    /// CoreLink QoS-400 / AXI-ICRT style baseline the paper's related work
    /// discusses. Starves low-priority managers under saturation, which is
    /// exactly why AXI-REALM uses credits instead; `bench_baseline_qos`
    /// demonstrates the difference.
    kQosPriority,
};

struct XbarConfig {
    /// Subordinate index receiving traffic to unmapped addresses (typically
    /// an `ErrorSlave`); decoding an unmapped address without a default
    /// port is a contract violation.
    std::optional<std::uint32_t> default_port;
    /// Write bursts a subordinate port may have granted-but-incomplete.
    std::uint32_t max_outstanding_writes_per_sub = 8;
    XbarArbitration arbitration = XbarArbitration::kRoundRobin;
};

class AxiXbar : public sim::Component {
public:
    AxiXbar(sim::SimContext& ctx, std::string name, std::vector<axi::AxiChannel*> managers,
            std::vector<axi::AxiChannel*> subordinates, AddrMap map, XbarConfig config = {});

    void reset() override;
    void tick() override;

    [[nodiscard]] std::uint32_t num_managers() const noexcept {
        return static_cast<std::uint32_t>(mgrs_.size());
    }
    [[nodiscard]] std::uint32_t num_subordinates() const noexcept {
        return static_cast<std::uint32_t>(subs_.size());
    }

    /// \name Introspection for fairness tests and benches
    ///@{
    [[nodiscard]] std::uint64_t aw_grants(std::uint32_t mgr) const { return aw_grants_.at(mgr); }
    [[nodiscard]] std::uint64_t ar_grants(std::uint32_t mgr) const { return ar_grants_.at(mgr); }
    [[nodiscard]] std::uint64_t w_stall_cycles(std::uint32_t sub) const {
        return w_stalls_.at(sub);
    }
    [[nodiscard]] std::uint64_t decode_errors() const noexcept { return decode_errors_; }
    [[nodiscard]] std::uint64_t ordering_stalls() const noexcept { return ordering_stalls_; }
    ///@}

private:
    struct WGrant {
        std::uint32_t mgr = 0;
        std::uint32_t beats_left = 0;
    };
    struct InFlight {
        std::uint32_t port = 0;
        std::uint32_t count = 0;
    };
    /// Key for per-manager per-ID ordering maps.
    [[nodiscard]] static std::uint64_t order_key(std::uint32_t mgr, axi::IdT id) noexcept {
        return (std::uint64_t{mgr} << 32) | id;
    }

    [[nodiscard]] std::uint32_t route(axi::Addr addr);
    /// Strict-priority selection on AxQOS with round-robin among equals.
    template <typename Requesting, typename QosOf>
    [[nodiscard]] int pick_by_qos(const Requesting& requesting, const QosOf& qos_of,
                                  const RoundRobinArbiter& rr) const {
        int best = -1;
        int best_qos = -1;
        for (std::uint32_t i = 0; i < num_managers(); ++i) {
            // Scan in RR order so equal priorities still rotate.
            const std::uint32_t m = (rr.last_winner() + 1 + i) % num_managers();
            if (!requesting(m)) { continue; }
            const int q = qos_of(m);
            if (q > best_qos) {
                best_qos = q;
                best = static_cast<int>(m);
            }
        }
        return best;
    }
    void arbitrate_aw(std::uint32_t sub);
    void forward_w(std::uint32_t sub);
    void arbitrate_ar(std::uint32_t sub);
    void route_b(std::uint32_t mgr);
    void route_r(std::uint32_t mgr);
    void update_activity();

    std::vector<axi::AxiChannel*> mgrs_;
    std::vector<axi::AxiChannel*> subs_;
    AddrMap map_;
    XbarConfig config_;

    std::vector<RoundRobinArbiter> aw_arb_; ///< per subordinate
    std::vector<RoundRobinArbiter> ar_arb_; ///< per subordinate
    std::vector<std::deque<WGrant>> w_serve_; ///< per subordinate: granted write order
    std::vector<std::deque<std::uint32_t>> w_route_; ///< per manager: target sub per AW
    std::unordered_map<std::uint64_t, InFlight> w_in_flight_; ///< ordering (writes)
    std::unordered_map<std::uint64_t, InFlight> r_in_flight_; ///< ordering (reads)
    std::vector<RoundRobinArbiter> b_arb_; ///< per manager, over subordinates
    std::vector<RoundRobinArbiter> r_arb_; ///< per manager, over subordinates

    std::vector<std::uint64_t> aw_grants_;
    std::vector<std::uint64_t> ar_grants_;
    std::vector<std::uint64_t> w_stalls_;
    std::uint64_t decode_errors_ = 0;
    std::uint64_t ordering_stalls_ = 0;
};

} // namespace realm::ic
