/// \file
/// \brief Quickstart: describe an experiment declaratively, let a DMA
///        trample a core, then turn on AXI-REALM regulation and watch
///        fairness return — all through the scenario engine.
///
/// Build & run:  ./build/quickstart
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#include <cstdio>

using namespace realm;
using namespace realm::scenario;

namespace {
constexpr axi::Addr kDram = 0x8000'0000; // LLC-backed main memory
constexpr axi::Addr kSpm = 0x7000'0000;  // accelerator scratchpad

/// One experiment: the core streams reads from the LLC while the DSA DMA
/// endlessly double-buffers 256-beat bursts. `dma_fragment` is the REALM
/// granularity on the DSA port — 256 leaves the bursts whole (burst-
/// granular round-robin starves the core), 1 makes arbitration fair again.
ScenarioConfig contention_scenario(std::uint32_t dma_fragment) {
    ScenarioConfig cfg;
    cfg.name = "quickstart/frag-" + std::to_string(dma_fragment);

    // DRAM content + hot LLC (our experiments assume a warm cache), and the
    // boot-flow regulation programmed through the guarded register file:
    // [budget bytes, period cycles, fragment] per REALM unit, core first.
    cfg.preload.push_back(PreloadSpan{kDram, 0x20000, 7, /*warm=*/true});
    cfg.boot_plans.push_back(RegionPlan{1ULL << 30, 1ULL << 20, 256});
    cfg.boot_plans.push_back(RegionPlan{1ULL << 30, 1ULL << 20, dma_fragment});

    InterferenceConfig dma;
    dma.dma.burst_beats = 256;
    dma.src = kDram + 0x10000;
    dma.dst = kSpm;
    dma.bytes = 0x4000;
    dma.loop = true;
    cfg.interference.push_back(dma);

    cfg.victim.kind = VictimConfig::Kind::kStream;
    cfg.victim.stream = {.base = kDram, .bytes = 0x8000, .op_bytes = 8,
                         .stride_bytes = 8};
    cfg.warmup_cycles = 0;
    cfg.max_cycles = 10'000'000;
    return cfg;
}
} // namespace

int main() {
    // 1. Two declarative scenario points: unregulated (fragment 256) vs
    //    regulated (fragment 1). Each runs in its own SimContext, so the
    //    runner can execute them on parallel threads.
    const std::vector<ScenarioConfig> points = {contention_scenario(256),
                                                contention_scenario(1)};
    const ScenarioRunner runner{RunnerOptions{.threads = 2}};
    const std::vector<ScenarioResult> results = runner.run(points);
    const ScenarioResult& rough = results[0];
    const ScenarioResult& fair = results[1];

    // 2. The victim's view: burst-granular arbitration vs fair interleaving.
    std::printf("uncontrolled contention: core load latency mean=%.1f max=%llu cycles\n",
                rough.load_lat_mean,
                static_cast<unsigned long long>(rough.load_lat_max));
    std::printf("with fragmentation 1:    core load latency mean=%.1f max=%llu cycles\n",
                fair.load_lat_mean, static_cast<unsigned long long>(fair.load_lat_max));

    // 3. Observability: everything the M&R unit on the DSA port saw, free
    //    of charge — no bus analyzer attached.
    std::printf("\nM&R on the DSA port: %llu B moved, read latency mean %.1f cycles\n",
                static_cast<unsigned long long>(fair.dma_mr_bytes_total),
                fair.dma_mr_read_lat_mean);
    std::printf("DMA read bandwidth during the victim run: %.2f B/cycle\n",
                fair.dma_read_bw);

    // 4. Host-side: the activity-aware kernel skips idle components and
    //    fast-forwards fully-quiescent stretches.
    std::printf("\nkernel: %llu ticks executed, %llu skipped, %llu cycles "
                "fast-forwarded\n",
                static_cast<unsigned long long>(fair.ticks_executed),
                static_cast<unsigned long long>(fair.ticks_skipped),
                static_cast<unsigned long long>(fair.fast_forwarded_cycles));
    return fair.load_lat_max < rough.load_lat_max ? 0 : 1;
}
