/// Unit tests for the activity-aware scheduler: idle/wake edge cases,
/// fast-forward semantics, and bit-identical equivalence with the naive
/// tick-all loop on the Figure 6 SoC topology.
#include "axi/checker.hpp"
#include "axi/probe.hpp"
#include "axi/trace.hpp"
#include "mem/axi_mem_slave.hpp"
#include "noc/routing.hpp"
#include "realm/burst_equalizer.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/component.hpp"
#include "sim/context.hpp"
#include "sim/link.hpp"
#include "traffic/dma.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace realm {
namespace {

using sim::Component;
using sim::Cycle;
using sim::Link;
using sim::Scheduler;
using sim::SimContext;

// --- Idle / wake primitives --------------------------------------------------

/// Ticks once, then sleeps forever; counts evaluations.
class SleepyComponent : public Component {
public:
    using Component::Component;
    void tick() override {
        ++ticks;
        idle_forever();
    }
    int ticks = 0;
};

TEST(Scheduler, IdleComponentIsSkipped) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    SleepyComponent sleepy{ctx, "sleepy"};
    ctx.step(); // evaluates once, declares idle
    const std::uint64_t executed_after_first = ctx.ticks_executed();
    ctx.step();
    ctx.step();
    EXPECT_EQ(sleepy.ticks, 1);
    EXPECT_EQ(ctx.ticks_executed(), executed_after_first);
    EXPECT_EQ(ctx.ticks_skipped(), 2U);
}

TEST(Scheduler, TickAllNeverSkips) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kTickAll);
    SleepyComponent sleepy{ctx, "sleepy"};
    ctx.run(5);
    EXPECT_EQ(sleepy.ticks, 5) << "tick-all must ignore idle declarations";
    EXPECT_EQ(ctx.ticks_skipped(), 0U);
}

/// Consumes from a link; sleeps whenever the link is empty.
class LinkConsumer : public Component {
public:
    LinkConsumer(SimContext& ctx, std::string name, Link<int>& link)
        : Component{ctx, std::move(name)}, link_{&link} {
        link.set_wake_on_push(this);
    }
    void tick() override {
        ++ticks;
        if (link_->can_pop()) { values.push_back(link_->pop()); }
        if (link_->empty()) { idle_forever(); }
    }
    Link<int>* link_;
    std::vector<int> values;
    int ticks = 0;
};

TEST(Scheduler, WakeOnLinkPushDeliversFlit) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    Link<int> link{ctx, 2, "l"};
    LinkConsumer consumer{ctx, "consumer", link};
    ctx.run(10); // consumer ticks once, then sleeps
    EXPECT_EQ(consumer.ticks, 1);

    link.push(42); // push from outside any tick: wakes the consumer
    ctx.run(10);
    ASSERT_EQ(consumer.values.size(), 1U);
    EXPECT_EQ(consumer.values[0], 42);
    // Registered link: pushed at cycle 10, poppable (and consumed) at 11.
    EXPECT_EQ(consumer.ticks, 2);
}

TEST(Scheduler, WakeFromEarlierProducerInSameCycle) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    Link<int> link{ctx, 4, "l"};

    /// Producer registered *before* the consumer: pushes one flit at a
    /// scheduled cycle, then sleeps.
    class Producer : public Component {
    public:
        Producer(SimContext& ctx, Link<int>& link) : Component{ctx, "prod"}, link_{&link} {}
        void tick() override {
            if (now() == 5) { link_->push(7); }
            idle_until(now() == 5 ? sim::kNoCycle : 5);
        }
        Link<int>* link_;
    } producer{ctx, link};
    LinkConsumer consumer{ctx, "consumer", link};

    ctx.run(20);
    ASSERT_EQ(consumer.values.size(), 1U);
    EXPECT_EQ(consumer.values[0], 7);
}

// --- Fast-forward ------------------------------------------------------------

/// Sleeps in fixed-length intervals, recording each evaluation cycle.
class TimerComponent : public Component {
public:
    TimerComponent(SimContext& ctx, Cycle interval)
        : Component{ctx, "timer"}, interval_{interval} {}
    void tick() override {
        fired_at.push_back(now());
        idle_until(now() + interval_);
    }
    Cycle interval_;
    std::vector<Cycle> fired_at;
};

TEST(Scheduler, FastForwardJumpsToNextWake) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    TimerComponent timer{ctx, 1000};
    ctx.run(3001);
    EXPECT_EQ(ctx.now(), 3001U);
    EXPECT_EQ(timer.fired_at, (std::vector<Cycle>{0, 1000, 2000, 3000}));
    EXPECT_GT(ctx.fast_forwarded_cycles(), 2900U);
}

TEST(Scheduler, FastForwardNeverOvershootsRunBoundary) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    TimerComponent timer{ctx, 1'000'000};
    ctx.run(500); // all idle until 1M, but the run ends at 500
    EXPECT_EQ(ctx.now(), 500U);
}

TEST(Scheduler, RunUntilHonorsDeadlineAcrossFastForward) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    TimerComponent timer{ctx, 1'000'000};
    // The predicate never fires; the deadline must land exactly.
    EXPECT_FALSE(ctx.run_until([] { return false; }, 777));
    EXPECT_EQ(ctx.now(), 777U);
}

TEST(Scheduler, RunUntilStopsOnPredicateAfterJump) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    TimerComponent timer{ctx, 100};
    EXPECT_TRUE(ctx.run_until([&] { return timer.fired_at.size() >= 3; }, 10'000));
    EXPECT_EQ(timer.fired_at.size(), 3U);
    EXPECT_LE(ctx.now(), 201U);
}

TEST(Scheduler, AllAsleepForeverFastForwardsToRunEnd) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    SleepyComponent sleepy{ctx, "sleepy"};
    ctx.run(1'000'000);
    EXPECT_EQ(ctx.now(), 1'000'000U);
    EXPECT_EQ(sleepy.ticks, 1);
    EXPECT_EQ(ctx.fast_forwarded_cycles(), 999'999U);
}

TEST(Scheduler, ResetClearsIdleDeclarations) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    SleepyComponent sleepy{ctx, "sleepy"};
    ctx.run(10);
    EXPECT_EQ(sleepy.ticks, 1);
    ctx.reset();
    ctx.step();
    EXPECT_EQ(sleepy.ticks, 2) << "a reset component must be evaluated again";
}

// --- Equivalence on the Figure 6 topology ------------------------------------

scenario::ScenarioConfig small_fig6_point(Scheduler scheduler) {
    // A Figure 6b budget point, shrunk (smaller Susan image) to keep the
    // test fast while exercising the full SoC: REALM units, splitter,
    // write buffer, M&R credits with a short period, LLC, crossbar, DMA.
    scenario::Sweep sweep = scenario::make_sweep("fig6b");
    scenario::ScenarioConfig cfg = sweep.points.back().config; // 1/5 budget
    cfg.victim.susan.width = 32;
    cfg.victim.susan.height = 24;
    cfg.scheduler = scheduler;
    return cfg;
}

TEST(SchedulerEquivalence, Fig6TopologyBitIdentical) {
    const scenario::ScenarioResult naive =
        scenario::run_scenario(small_fig6_point(Scheduler::kTickAll));
    const scenario::ScenarioResult fast =
        scenario::run_scenario(small_fig6_point(Scheduler::kActivity));

    ASSERT_TRUE(naive.boot_ok);
    ASSERT_FALSE(naive.timed_out);
    EXPECT_GT(naive.ops, 0U);

    EXPECT_EQ(naive.run_cycles, fast.run_cycles);
    EXPECT_EQ(naive.ops, fast.ops);
    EXPECT_EQ(naive.load_lat_mean, fast.load_lat_mean);
    EXPECT_EQ(naive.load_lat_min, fast.load_lat_min);
    EXPECT_EQ(naive.load_lat_max, fast.load_lat_max);
    EXPECT_EQ(naive.load_lat_p99, fast.load_lat_p99);
    EXPECT_EQ(naive.store_lat_mean, fast.store_lat_mean);
    EXPECT_EQ(naive.store_lat_max, fast.store_lat_max);
    EXPECT_EQ(naive.dma_bytes, fast.dma_bytes);
    EXPECT_EQ(naive.dma_read_bw, fast.dma_read_bw);
    EXPECT_EQ(naive.dma_depletions, fast.dma_depletions);
    EXPECT_EQ(naive.dma_isolation_cycles, fast.dma_isolation_cycles);
    EXPECT_EQ(naive.dma_throttle_stalls, fast.dma_throttle_stalls);
    EXPECT_EQ(naive.dma_cut_through, fast.dma_cut_through);
    EXPECT_EQ(naive.xbar_w_stalls, fast.xbar_w_stalls);
    EXPECT_EQ(naive.dma_mr_bytes_total, fast.dma_mr_bytes_total);
    EXPECT_EQ(naive.dma_mr_read_lat_mean, fast.dma_mr_read_lat_mean);
    EXPECT_EQ(naive.simulated_cycles, fast.simulated_cycles);

    // And the activity kernel must actually have saved work. (No full
    // fast-forward here: the looping interference DMA never goes idle;
    // whole-system jumps are covered by the idle-tail unit tests above.)
    EXPECT_EQ(naive.ticks_skipped, 0U);
    EXPECT_GT(fast.ticks_skipped, 0U);
    EXPECT_LT(fast.ticks_executed, naive.ticks_executed);
}

TEST(SchedulerEquivalence, BurstEqualizerBitIdenticalAndSleeps) {
    // The ABE baseline now opts into the activity contract: a DMA pushes a
    // finite copy through the equalizer into an SRAM slave, then everything
    // idles for a long tail. Both schedulers must agree bit for bit, and
    // the activity kernel must skip the quiescent stretch.
    struct Run {
        std::uint64_t bytes_written = 0;
        std::uint64_t chunks = 0;
        std::uint64_t fragments = 0;
        double read_lat_mean = 0;
        std::uint64_t ticks_executed = 0;
        Cycle fast_forwarded = 0;
    };
    const auto run_one = [](Scheduler scheduler) {
        SimContext ctx;
        ctx.set_scheduler(scheduler);
        axi::AxiChannel up{ctx, "up"};
        axi::AxiChannel down{ctx, "down"};
        rt::BurstEqualizer abe{ctx, "abe", up, down, rt::BurstEqualizerConfig{8, 2}};
        mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                               mem::AxiMemSlaveConfig{8, 8, 0}};
        traffic::DmaConfig dcfg;
        dcfg.burst_beats = 64;
        traffic::DmaEngine dma{ctx, "dma", up, dcfg};
        dma.push_job(traffic::DmaJob{0x0, 0x8000, 0x2000, false});
        ctx.run(200'000); // finite copy plus a long idle tail
        return Run{dma.bytes_written(), dma.chunks_completed(),
                   abe.splitter().fragments_created(), dma.read_latency().mean(),
                   ctx.ticks_executed(), ctx.fast_forwarded_cycles()};
    };
    const Run naive = run_one(Scheduler::kTickAll);
    const Run fast = run_one(Scheduler::kActivity);
    EXPECT_EQ(naive.bytes_written, 0x2000U);
    EXPECT_EQ(fast.bytes_written, naive.bytes_written);
    EXPECT_EQ(fast.chunks, naive.chunks);
    EXPECT_EQ(fast.fragments, naive.fragments);
    EXPECT_EQ(fast.read_lat_mean, naive.read_lat_mean);
    EXPECT_LT(fast.ticks_executed, naive.ticks_executed / 10)
        << "the equalizer pipeline must sleep through the idle tail";
    EXPECT_GT(fast.fast_forwarded, 150'000U);
}

TEST(SchedulerEquivalence, InstrumentedChainBitIdenticalAndSleeps) {
    // Probe, tracer, and checker now opt into the idle contract: a fully
    // instrumented hop (DMA -> checker -> probe -> tracer -> SRAM) must
    // agree bit for bit across schedulers and still fast-forward the
    // quiescent tail — observability must not cost idle cycles.
    struct Run {
        std::uint64_t bytes_written = 0;
        std::uint64_t probe_reads = 0;
        std::uint64_t probe_writes = 0;
        double read_lat_mean = 0;
        std::uint64_t trace_total = 0;
        std::uint64_t checked_writes = 0;
        std::uint64_t checked_reads = 0;
        std::uint64_t ticks_executed = 0;
        Cycle fast_forwarded = 0;
    };
    const auto run_one = [](Scheduler scheduler) {
        SimContext ctx;
        ctx.set_scheduler(scheduler);
        axi::AxiChannel a{ctx, "a"};
        axi::AxiChannel b{ctx, "b"};
        axi::AxiChannel c{ctx, "c"};
        axi::AxiChannel d{ctx, "d"};
        axi::AxiChecker checker{ctx, "chk", a, b};
        axi::AxiLatencyProbe probe{ctx, "probe", b, c};
        axi::AxiTracer tracer{ctx, "trace", c, d};
        mem::AxiMemSlave slave{ctx, "mem", d, std::make_unique<mem::SramBackend>(1, 1),
                               mem::AxiMemSlaveConfig{8, 8, 0}};
        traffic::DmaConfig dcfg;
        dcfg.burst_beats = 32;
        traffic::DmaEngine dma{ctx, "dma", a, dcfg};
        dma.push_job(traffic::DmaJob{0x0, 0x8000, 0x2000, false});
        ctx.run(200'000); // finite copy plus a long idle tail
        return Run{dma.bytes_written(),     probe.ar_count(),
                   probe.aw_count(),        probe.read_latency().mean(),
                   tracer.total_recorded(), checker.completed_writes(),
                   checker.completed_reads(), ctx.ticks_executed(),
                   ctx.fast_forwarded_cycles()};
    };
    const Run naive = run_one(Scheduler::kTickAll);
    const Run fast = run_one(Scheduler::kActivity);
    EXPECT_EQ(naive.bytes_written, 0x2000U);
    EXPECT_EQ(fast.bytes_written, naive.bytes_written);
    EXPECT_EQ(fast.probe_reads, naive.probe_reads);
    EXPECT_EQ(fast.probe_writes, naive.probe_writes);
    EXPECT_EQ(fast.read_lat_mean, naive.read_lat_mean);
    EXPECT_EQ(fast.trace_total, naive.trace_total);
    EXPECT_EQ(fast.checked_writes, naive.checked_writes);
    EXPECT_EQ(fast.checked_reads, naive.checked_reads);
    EXPECT_GT(naive.trace_total, 0U) << "the tracer must have seen traffic";
    EXPECT_LT(fast.ticks_executed, naive.ticks_executed / 10)
        << "the instrumented pipeline must sleep through the idle tail";
    EXPECT_GT(fast.fast_forwarded, 150'000U);
}

TEST(SchedulerEquivalence, DosAttackTopologyBitIdentical) {
    // The write-stall DoS scenario stresses different paths (write buffer
    // off, cut-through W reservations, no boot script).
    scenario::Sweep sweep = scenario::make_sweep("ablation-dos");
    scenario::ScenarioConfig cfg = sweep.points[0].config;

    cfg.scheduler = Scheduler::kTickAll;
    const scenario::ScenarioResult naive = scenario::run_scenario(cfg);
    cfg.scheduler = Scheduler::kActivity;
    const scenario::ScenarioResult fast = scenario::run_scenario(cfg);

    ASSERT_FALSE(naive.timed_out);
    EXPECT_EQ(naive.run_cycles, fast.run_cycles);
    EXPECT_EQ(naive.store_lat_mean, fast.store_lat_mean);
    EXPECT_EQ(naive.store_lat_max, fast.store_lat_max);
    EXPECT_EQ(naive.xbar_w_stalls, fast.xbar_w_stalls);
    EXPECT_EQ(naive.dma_cut_through, fast.dma_cut_through);
}

// --- Sharded-kernel equivalence ----------------------------------------------

/// A contended mesh point (3x4 hog from mesh-contention), shrunk to keep the
/// matrix of (policy x shard count) runs fast, with real worker threads
/// forced so the concurrent barrier path runs even on single-core hosts.
scenario::ScenarioConfig
small_mesh_point(noc::RoutingPolicy routing, unsigned shards,
                 std::uint32_t link_latency = 1,
                 scenario::PartitionPolicy partition =
                     scenario::PartitionPolicy::kStripe) {
    scenario::Sweep sweep = scenario::make_sweep("mesh-contention");
    scenario::ScenarioConfig cfg = sweep.points.at(4).config; // 3x4 hog
    cfg.victim.stream.bytes = 0x400;
    cfg.topology.mesh.routing = routing;
    cfg.topology.mesh.link_latency = link_latency;
    cfg.shards = shards;
    cfg.shard_workers = shards > 1 ? 2 : 0;
    cfg.partition = partition;
    return cfg;
}

/// Field-by-field bit-identity of everything a sharded run could plausibly
/// perturb (latency distribution, DMA progress, fabric counters, timing).
void expect_same_results(const scenario::ScenarioResult& a,
                         const scenario::ScenarioResult& b) {
    EXPECT_EQ(a.run_cycles, b.run_cycles);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.load_lat_mean, b.load_lat_mean);
    EXPECT_EQ(a.load_lat_min, b.load_lat_min);
    EXPECT_EQ(a.load_lat_max, b.load_lat_max);
    EXPECT_EQ(a.load_lat_p99, b.load_lat_p99);
    EXPECT_EQ(a.store_lat_mean, b.store_lat_mean);
    EXPECT_EQ(a.store_lat_max, b.store_lat_max);
    EXPECT_EQ(a.dma_bytes, b.dma_bytes);
    EXPECT_EQ(a.dma_read_bw, b.dma_read_bw);
    EXPECT_EQ(a.dma_depletions, b.dma_depletions);
    EXPECT_EQ(a.dma_isolation_cycles, b.dma_isolation_cycles);
    EXPECT_EQ(a.xbar_w_stalls, b.xbar_w_stalls);
    EXPECT_EQ(a.fabric_hops, b.fabric_hops);
    EXPECT_EQ(a.simulated_cycles, b.simulated_cycles);
}

TEST(ShardedKernel, MeshBitIdenticalAcrossShardCountsAndPolicies) {
    for (const noc::RoutingPolicy routing :
         {noc::RoutingPolicy::kXY, noc::RoutingPolicy::kYX,
          noc::RoutingPolicy::kO1Turn, noc::RoutingPolicy::kWestFirst}) {
        const scenario::ScenarioResult ref =
            scenario::run_scenario(small_mesh_point(routing, 1));
        ASSERT_FALSE(ref.timed_out);
        ASSERT_GT(ref.ops, 0U);
        ASSERT_GT(ref.fabric_hops, 0U);
        for (const unsigned shards : {2U, 4U}) {
            const scenario::ScenarioResult sharded =
                scenario::run_scenario(small_mesh_point(routing, shards));
            SCOPED_TRACE(testing::Message()
                         << "routing=" << noc::to_string(routing)
                         << " shards=" << shards);
            expect_same_results(ref, sharded);
        }
    }
}

TEST(ShardedKernel, MatchesTickAllScheduler) {
    // Transitivity anchor: the sharded activity kernel must agree with the
    // unsharded naive tick-all loop, not merely with itself.
    scenario::ScenarioConfig cfg =
        small_mesh_point(noc::RoutingPolicy::kO1Turn, 1);
    cfg.scheduler = Scheduler::kTickAll;
    const scenario::ScenarioResult naive = scenario::run_scenario(cfg);
    const scenario::ScenarioResult sharded =
        scenario::run_scenario(small_mesh_point(noc::RoutingPolicy::kO1Turn, 4));
    ASSERT_FALSE(naive.timed_out);
    expect_same_results(naive, sharded);
}

TEST(ShardedKernel, OddWidthMeshBitIdentical) {
    // 3x5: 5 columns over 2 and 4 shards exercises uneven column stripes
    // (including a shard owning two columns and another owning one).
    scenario::Sweep sweep = scenario::make_sweep("mesh-contention");
    scenario::ScenarioConfig cfg = sweep.points.at(1).config; // 2x3 hog
    cfg.topology.mesh.rows = 3;
    cfg.topology.mesh.cols = 5;
    cfg.topology.mesh.nodes = scenario::make_mesh_roles(3, 5, 2, 2);
    cfg.victim.stream.bytes = 0x400;
    cfg.topology.mesh.routing = noc::RoutingPolicy::kO1Turn;
    const scenario::ScenarioResult ref = scenario::run_scenario(cfg);
    ASSERT_FALSE(ref.timed_out);
    ASSERT_GT(ref.fabric_hops, 0U);
    for (const unsigned shards : {2U, 4U}) {
        scenario::ScenarioConfig s = cfg;
        s.shards = shards;
        s.shard_workers = 2;
        SCOPED_TRACE(testing::Message() << "shards=" << shards);
        expect_same_results(ref, scenario::run_scenario(s));
    }
}

TEST(ShardedKernel, LookaheadBatchedBitIdenticalAcrossShardsAndPolicies) {
    // link_latency 4 turns every barrier epoch into a 4-cycle batch; the
    // batched kernel must agree bit for bit with the single-shard run (which
    // batches on the same config-pure cadence) for every policy and shard
    // count, including shard counts above the column count.
    for (const noc::RoutingPolicy routing :
         {noc::RoutingPolicy::kXY, noc::RoutingPolicy::kYX,
          noc::RoutingPolicy::kO1Turn, noc::RoutingPolicy::kWestFirst}) {
        const scenario::ScenarioResult ref =
            scenario::run_scenario(small_mesh_point(routing, 1, 4));
        ASSERT_FALSE(ref.timed_out);
        ASSERT_GT(ref.fabric_hops, 0U);
        for (const unsigned shards : {2U, 4U, 8U}) {
            const scenario::ScenarioResult sharded =
                scenario::run_scenario(small_mesh_point(routing, shards, 4));
            SCOPED_TRACE(testing::Message()
                         << "routing=" << noc::to_string(routing)
                         << " shards=" << shards << " link_latency=4");
            expect_same_results(ref, sharded);
        }
    }
}

TEST(ShardedKernel, LookaheadBatchingMatchesTickAllScheduler) {
    // Transitivity anchor at link_latency 2: the batched activity kernel
    // must agree with the naive tick-all loop under the same link model.
    scenario::ScenarioConfig cfg =
        small_mesh_point(noc::RoutingPolicy::kO1Turn, 1, 2);
    cfg.scheduler = Scheduler::kTickAll;
    const scenario::ScenarioResult naive = scenario::run_scenario(cfg);
    const scenario::ScenarioResult sharded = scenario::run_scenario(
        small_mesh_point(noc::RoutingPolicy::kO1Turn, 4, 2));
    ASSERT_FALSE(naive.timed_out);
    expect_same_results(naive, sharded);
}

TEST(ShardedKernel, BalancedPartitionBitIdentical) {
    // The greedy balanced partition scatters tiles off the column stripes;
    // results must not move, at every link latency.
    for (const std::uint32_t latency : {1U, 2U, 4U}) {
        const scenario::ScenarioResult ref = scenario::run_scenario(
            small_mesh_point(noc::RoutingPolicy::kXY, 1, latency));
        ASSERT_FALSE(ref.timed_out);
        for (const unsigned shards : {2U, 8U}) {
            SCOPED_TRACE(testing::Message() << "link_latency=" << latency
                                            << " shards=" << shards);
            expect_same_results(
                ref, scenario::run_scenario(small_mesh_point(
                         noc::RoutingPolicy::kXY, shards, latency,
                         scenario::PartitionPolicy::kBalanced)));
        }
    }
}

TEST(ShardedKernel, LinkLatencyIsSemantic) {
    // Deeper links must actually change the simulated latency picture (the
    // knob is hashed); this guards against the pipeline silently collapsing
    // back to one cycle. Compare uncontended runs — with hogs active a slower
    // link also throttles the attacker, so victim latency is not monotonic.
    auto solo = [](std::uint32_t latency) {
        scenario::ScenarioConfig cfg =
            small_mesh_point(noc::RoutingPolicy::kXY, 1, latency);
        cfg.interference.clear();
        return scenario::run_scenario(cfg);
    };
    const scenario::ScenarioResult l1 = solo(1);
    const scenario::ScenarioResult l4 = solo(4);
    ASSERT_FALSE(l1.timed_out);
    ASSERT_FALSE(l4.timed_out);
    EXPECT_GT(l4.load_lat_mean, l1.load_lat_mean)
        << "4-cycle links must lengthen uncontended load latency";
    EXPECT_GT(l4.run_cycles, l1.run_cycles);
}

TEST(ShardedKernel, RepeatedShardedRunsAreDeterministic) {
    const scenario::ScenarioConfig cfg =
        small_mesh_point(noc::RoutingPolicy::kWestFirst, 4);
    const scenario::ScenarioResult first = scenario::run_scenario(cfg);
    const scenario::ScenarioResult second = scenario::run_scenario(cfg);
    ASSERT_FALSE(first.timed_out);
    expect_same_results(first, second);
}

TEST(ShardedKernel, ShrinkingShardCountFoldsCountersIntoShardZero) {
    SimContext ctx;
    ctx.set_scheduler(Scheduler::kActivity);
    ctx.set_shards(4);
    ctx.set_shard_workers(1); // multiplexed path: no worker threads needed
    std::vector<std::unique_ptr<SleepyComponent>> comps;
    for (unsigned s = 0; s < 4; ++s) {
        const sim::ShardScope scope{ctx, s};
        comps.push_back(
            std::make_unique<SleepyComponent>(ctx, "c" + std::to_string(s)));
    }
    ctx.step(); // each shard executes its one component
    ASSERT_EQ(ctx.ticks_executed(), 4U);
    ASSERT_EQ(ctx.shard_ticks_executed(3), 1U);

    ctx.set_shards(2);
    ctx.step(); // repartitions: truncated shard counters must fold, not drop
    EXPECT_EQ(ctx.ticks_executed(), 4U)
        << "shrinking the shard count dropped per-shard tick counters";
    EXPECT_EQ(ctx.shard_ticks_executed(0) + ctx.shard_ticks_executed(1), 4U);
    EXPECT_EQ(ctx.shard_ticks_executed(2), 0U);
    EXPECT_EQ(ctx.shard_ticks_executed(3), 0U);
}

TEST(ShardedKernel, PerShardCountersPartitionTheTotals) {
    const scenario::ScenarioResult r =
        scenario::run_scenario(small_mesh_point(noc::RoutingPolicy::kXY, 4));
    ASSERT_EQ(r.shard_ticks_executed.size(), 4U);
    ASSERT_EQ(r.shard_ticks_skipped.size(), 4U);
    std::uint64_t executed = 0;
    std::uint64_t skipped = 0;
    unsigned busy_shards = 0;
    for (unsigned s = 0; s < 4; ++s) {
        executed += r.shard_ticks_executed[s];
        skipped += r.shard_ticks_skipped[s];
        busy_shards += r.shard_ticks_executed[s] > 0 ? 1U : 0U;
    }
    EXPECT_EQ(executed, r.ticks_executed);
    EXPECT_EQ(skipped, r.ticks_skipped);
    // The 3x4 mesh stripes over min(4, cols) = 4 shards; every stripe hosts
    // ticking components (routers at minimum), so no shard sits empty.
    EXPECT_EQ(busy_shards, 4U);
}

} // namespace
} // namespace realm
