#include "noc/credit.hpp"

#include <utility>

namespace realm::noc {

void NocFlowConfig::validate() const {
    REALM_EXPECTS(flits_per_packet >= 1, "flits_per_packet must be >= 1");
    // NocPacket::flits is 8-bit; a longer worm would silently truncate at
    // packetization and leak credits at ejection.
    REALM_EXPECTS(flits_per_packet <= 255, "flits_per_packet must fit 8 bits");
    REALM_EXPECTS(vc_depth >= flits_per_packet,
                  "vc_depth must hold at least one whole worm");
    REALM_EXPECTS(e2e_credits >= flits_per_packet + 1,
                  "e2e_credits must exceed one worm plus its header");
}

void NocLink::push(NocPacket pkt) {
    REALM_EXPECTS(pkt.vc < vcs_.size(), "push into unknown VC of " + name_);
    REALM_EXPECTS(can_push(pkt.flits, pkt.vc),
                  "push into busy/full NoC link " + name_);
    buffered_[pkt.vc] += pkt.flits;
    REALM_ENSURES(buffered_[pkt.vc] <= fc_.vc_depth,
                  name_ + ": VC buffer exceeds its configured depth");
    if (buffered_[pkt.vc] > peak_[pkt.vc]) { peak_[pkt.vc] = buffered_[pkt.vc]; }
    // The worm's tail leaves the sender `flits` cycles after the header;
    // the physical channel is busy until then (shared across VCs).
    busy_until_ = ctx_->now() + pkt.flits;
    vcs_[pkt.vc]->push(std::move(pkt));
}

NocPacket NocLink::pop(std::uint8_t vc) {
    NocPacket pkt = vcs_.at(vc)->pop();
    REALM_ENSURES(buffered_[vc] >= pkt.flits, "NoC link flit underflow");
    buffered_[vc] -= pkt.flits;
    return pkt;
}

std::size_t staging_depth(const NocFlowConfig& fc) { return fc.e2e_credits; }

void wire_credit_returns(const sim::SimContext& ctx, axi::AxiChannel& egress,
                         CreditPool& pool, const NocFlowConfig& fc) {
    const std::uint32_t data_flits = fc.packet_flits(/*data_carrying=*/true);
    const std::uint32_t delay = fc.credit_return_delay;
    const auto returner = [&ctx, &pool, delay](std::uint32_t flits) {
        if (delay == 0) {
            pool.release(flits);
        } else {
            pool.release_at(ctx.now() + delay, flits);
        }
    };
    egress.aw.set_on_pop([returner] { returner(1); });
    egress.ar.set_on_pop([returner] { returner(1); });
    egress.w.set_on_pop([returner, data_flits] { returner(data_flits); });
}

std::uint32_t staged_request_flits(const axi::AxiChannel& egress,
                                   const NocFlowConfig& fc) {
    const std::uint32_t data_flits = fc.packet_flits(/*data_carrying=*/true);
    return static_cast<std::uint32_t>(egress.aw.occupancy()) +
           static_cast<std::uint32_t>(egress.ar.occupancy()) +
           static_cast<std::uint32_t>(egress.w.occupancy()) * data_flits;
}

void check_staging_invariants(const axi::AxiChannel& egress, const CreditPool& pool,
                              const NocFlowConfig& fc,
                              std::uint32_t stashed_flits) {
    const std::uint32_t staged = staged_request_flits(egress, fc) + stashed_flits;
    REALM_ENSURES(staged <= fc.e2e_credits,
                  "NI staging exceeds its end-to-end credit pool");
    REALM_ENSURES(staged <= pool.in_flight(),
                  "staged flits without matching in-flight credits");
}

} // namespace realm::noc
