/// \file
/// \brief Credit-based flow control for the NoC transport layer: wormhole
///        flit links with per-VC credits, and end-to-end credit pools
///        between injecting and ejecting network interfaces.
///
/// The provisioned transport kept multi-writer subordinates deadlock-free
/// with 1024-flit per-source egress staging — a bound that was *assumed*.
/// The credited transport *enforces* every buffer bound instead:
///
///  - **Wormhole worms.** A data-carrying packet (W / R beat) serializes
///    into `flits_per_packet` flits (header + payload sized from the AXI
///    beat width); address/response packets (AW / AR / B) are single-flit
///    headers. A link transmits one flit per cycle, so a worm occupies its
///    link for `flits` cycles — the head-of-line blocking the AXI-REALM RTL
///    work measures on real interconnects, now visible in the DoS matrix.
///  - **Per-VC link credits.** Each link (the request and response networks
///    are disjoint physical links, i.e. one VC each) buffers at most
///    `vc_depth` flits at the receiver; `NocLink` asserts the bound on
///    every push.
///  - **End-to-end credits.** An injecting NI may only send a request worm
///    toward subordinate node D while it holds `flits` credits from D's
///    pool; credits return when the target NI's staging drains into the
///    egress mux. Ejection therefore *never* backpressures the network
///    (asserted), which removes the protocol-deadlock scenario the deep
///    staging used to paper over. Responses use a separate pool per
///    (manager, subordinate) pair, so the request/response split keeps its
///    deadlock-freedom argument.
///
/// `FlowControl::kProvisioned` keeps the legacy model (single-beat packets,
/// depth-2 links, deep staging) for one release so the DoS matrix can A/B
/// the two transports.
#pragma once

#include "axi/channel.hpp"
#include "noc/packet.hpp"

#include "sim/check.hpp"
#include "sim/link.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace realm::noc {

/// Transport model of a NoC fabric.
enum class FlowControl : std::uint8_t {
    kProvisioned, ///< legacy: single-beat packets, provisioned deep staging
    kCredited,    ///< wormhole worms, per-VC link credits, e2e NI credits
};

[[nodiscard]] constexpr const char* to_string(FlowControl fc) noexcept {
    switch (fc) {
    case FlowControl::kProvisioned: return "provisioned";
    case FlowControl::kCredited: return "credited";
    }
    return "?";
}

/// Flow-control knobs shared by every NoC fabric (ring and mesh).
struct NocFlowConfig {
    FlowControl mode = FlowControl::kCredited;
    /// Flits per data-carrying packet (W / R beat): header + payload flits,
    /// i.e. the AXI beat width over the link phit width. AW / AR / B
    /// packets are single-flit headers. Ignored (forced 1) when
    /// `mode == kProvisioned`.
    std::uint32_t flits_per_packet = 4;
    /// Receiver buffer depth of one link VC, in flits. Must hold at least
    /// one whole worm (`vc_depth >= flits_per_packet`).
    std::uint32_t vc_depth = 8;
    /// End-to-end credit pool per (source node, target NI) pair, in flits.
    /// Bounds the per-source staging occupancy at a subordinate NI (request
    /// pool) and the in-flight responses toward a manager NI (response
    /// pool). Must exceed one worm plus its header
    /// (`e2e_credits >= flits_per_packet + 1`) so an AW parked in staging
    /// can never starve its own data beats.
    std::uint32_t e2e_credits = 32;

    /// Flit count of a request/response packet under this config.
    [[nodiscard]] std::uint32_t packet_flits(bool data_carrying) const noexcept {
        if (mode == FlowControl::kProvisioned) { return 1; }
        return data_carrying ? flits_per_packet : 1;
    }

    void validate() const;
};

/// One end-to-end credit pool: a counted reservation of `capacity` flits of
/// buffer space at a receiving NI. `in_flight + available == capacity` is
/// asserted on every transition, so a leak or double-release trips
/// immediately instead of showing up as a hung sweep hours later.
class CreditPool {
public:
    explicit CreditPool(std::uint32_t capacity = 0) : capacity_{capacity},
                                                      available_{capacity} {}

    [[nodiscard]] bool can_take(std::uint32_t flits) const noexcept {
        return available_ >= flits;
    }
    void take(std::uint32_t flits) {
        REALM_EXPECTS(can_take(flits), "credit take without available credits");
        available_ -= flits;
    }
    void release(std::uint32_t flits) {
        REALM_ENSURES(flits <= in_flight(),
                      "credit release exceeds in-flight credits");
        available_ += flits;
    }

    [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::uint32_t available() const noexcept { return available_; }
    [[nodiscard]] std::uint32_t in_flight() const noexcept {
        return capacity_ - available_;
    }

    /// Conservation invariant: credits in flight + credits held equal the
    /// configured pool. Structurally true of the counter pair; asserting it
    /// (rather than sampling) documents and pins the contract.
    void check_conserved() const {
        REALM_ENSURES(available_ <= capacity_, "credit pool over-released");
        REALM_ENSURES(in_flight() + available_ == capacity_,
                      "credit conservation violated");
    }

private:
    std::uint32_t capacity_ = 0;
    std::uint32_t available_ = 0;
};

/// Every end-to-end pool of one fabric: request pools indexed by
/// (target subordinate node, source manager node) and response pools by
/// (target manager node, source subordinate node). Kept separate so the
/// request/response protocol split stays deadlock-free under credit
/// exhaustion. Only allocated in credited mode.
class CreditBook {
public:
    CreditBook(std::uint8_t num_nodes, const NocFlowConfig& fc)
        : n_{num_nodes},
          req_(static_cast<std::size_t>(num_nodes) * num_nodes,
               CreditPool{fc.e2e_credits}),
          rsp_(static_cast<std::size_t>(num_nodes) * num_nodes,
               CreditPool{fc.e2e_credits}) {}

    [[nodiscard]] CreditPool& req(std::uint8_t dest, std::uint8_t src) {
        return req_[index(dest, src)];
    }
    [[nodiscard]] CreditPool& rsp(std::uint8_t dest, std::uint8_t src) {
        return rsp_[index(dest, src)];
    }
    [[nodiscard]] const CreditPool& req(std::uint8_t dest, std::uint8_t src) const {
        return req_[index(dest, src)];
    }
    [[nodiscard]] const CreditPool& rsp(std::uint8_t dest, std::uint8_t src) const {
        return rsp_[index(dest, src)];
    }

    [[nodiscard]] std::uint8_t num_nodes() const noexcept { return n_; }

    /// Asserts conservation on every pool.
    void check_conserved() const {
        for (const CreditPool& p : req_) { p.check_conserved(); }
        for (const CreditPool& p : rsp_) { p.check_conserved(); }
    }

private:
    [[nodiscard]] std::size_t index(std::uint8_t dest, std::uint8_t src) const {
        REALM_EXPECTS(dest < n_ && src < n_, "credit pool index out of range");
        return static_cast<std::size_t>(dest) * n_ + src;
    }

    std::uint8_t n_;
    std::vector<CreditPool> req_;
    std::vector<CreditPool> rsp_;
};

/// One NoC link under the selected flow control. In credited mode the link
/// transmits one flit per cycle (a worm of `n` flits occupies the channel
/// for `n` cycles — wormhole serialization; the header still forwards with
/// the usual one-cycle hop latency) and buffers at most `vc_depth` flits at
/// the receiver, asserted on every push. In provisioned mode it behaves
/// exactly like the legacy depth-2 `sim::Link` (packets are single-beat,
/// multiple pushes per cycle allowed).
class NocLink {
public:
    NocLink(const sim::SimContext& ctx, std::string name, const NocFlowConfig& fc)
        : ctx_{&ctx},
          fc_{fc},
          link_{ctx, fc.mode == FlowControl::kCredited ? fc.vc_depth : 2,
                std::move(name)} {}

    /// True when a packet of `flits` flits may start transmission this
    /// cycle: the channel is not serializing an earlier worm and the
    /// receiver-side VC holds enough free flit slots.
    [[nodiscard]] bool can_push(std::uint32_t flits) const noexcept {
        if (fc_.mode == FlowControl::kProvisioned) { return link_.can_push(); }
        return ctx_->now() >= busy_until_ && link_.can_push() &&
               buffered_flits_ + flits <= fc_.vc_depth;
    }
    [[nodiscard]] bool can_push(const NocPacket& pkt) const noexcept {
        return can_push(pkt.flits);
    }

    void push(NocPacket pkt);

    [[nodiscard]] bool can_pop() const noexcept { return link_.can_pop(); }
    [[nodiscard]] const NocPacket& front() const { return link_.front(); }
    NocPacket pop();

    [[nodiscard]] bool empty() const noexcept { return link_.empty(); }
    void set_wake_on_push(sim::Component* c) noexcept { link_.set_wake_on_push(c); }

    /// \name Introspection (tests / benches)
    ///@{
    [[nodiscard]] std::uint32_t buffered_flits() const noexcept {
        return buffered_flits_;
    }
    [[nodiscard]] std::uint32_t peak_buffered_flits() const noexcept {
        return peak_flits_;
    }
    [[nodiscard]] const NocFlowConfig& flow() const noexcept { return fc_; }
    [[nodiscard]] const std::string& name() const noexcept { return link_.name(); }
    ///@}

    /// Asserts the VC-occupancy bound (tests call this every cycle; pushes
    /// already enforce it inline).
    void check_bounded() const {
        if (fc_.mode != FlowControl::kCredited) { return; }
        REALM_ENSURES(buffered_flits_ <= fc_.vc_depth,
                      name() + ": VC buffer exceeds its configured depth");
    }

private:
    const sim::SimContext* ctx_;
    NocFlowConfig fc_;
    sim::Link<NocPacket> link_;
    std::uint32_t buffered_flits_ = 0;
    std::uint32_t peak_flits_ = 0;
    sim::Cycle busy_until_ = 0;
};

/// \name Staging helpers shared by the ring and mesh assemblies
///@{
/// Entries per staging lane under one transport: the end-to-end pool bounds
/// credited staging (at most `e2e_credits` single-flit entries per lane);
/// the legacy transport provisions 1024-deep lanes (see `NocRing`).
[[nodiscard]] std::size_t staging_depth(const NocFlowConfig& fc);

/// Wires the end-to-end credit returns of one per-source staging channel:
/// the pool's flits come back as the egress mux drains the lanes.
void wire_credit_returns(axi::AxiChannel& egress, CreditPool& pool,
                         const NocFlowConfig& fc);

/// Flits currently staged in one per-source egress channel's request lanes,
/// weighted by worm length (a staged W beat holds its whole worm's buffer
/// space). Used by the fabric invariant checkers.
[[nodiscard]] std::uint32_t staged_request_flits(const axi::AxiChannel& egress,
                                                 const NocFlowConfig& fc);

/// Asserts one (target NI, source) staging against its end-to-end pool:
/// staged flits within the configured pool, and never more than the
/// credits actually in flight (a credit is either staged at the NI or
/// still in the network). Shared by the ring and mesh
/// `check_flow_invariants`.
void check_staging_invariants(const axi::AxiChannel& egress, const CreditPool& pool,
                              const NocFlowConfig& fc);
///@}

} // namespace realm::noc
