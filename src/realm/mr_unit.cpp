#include "realm/mr_unit.hpp"

#include "sim/check.hpp"

#include <algorithm>

namespace realm::rt {

MonitorRegulationUnit::MonitorRegulationUnit(std::uint32_t num_regions)
    : regions_(num_regions) {
    REALM_EXPECTS(num_regions >= 1, "M&R unit needs at least one region");
}

void MonitorRegulationUnit::reset(sim::Cycle now) {
    for (RegionState& r : regions_) {
        const RegionConfig cfg = r.config;
        r = RegionState{};
        r.config = cfg;
        r.credit = static_cast<std::int64_t>(cfg.budget_bytes);
        r.period_start = now;
    }
    unmatched_txns_ = 0;
    isolation_cycles_ = 0;
}

void MonitorRegulationUnit::configure_region(std::uint32_t index, const RegionConfig& config,
                                             sim::Cycle now) {
    RegionState& r = regions_.at(index);
    r.config = config;
    // Reconfiguration restarts the period with a fresh credit: the paper
    // classifies budget/period writes as "intrusive" parameters that
    // trigger re-initialization.
    r.credit = static_cast<std::int64_t>(config.budget_bytes);
    r.period_start = now;
    r.bytes_this_period = 0;
}

void MonitorRegulationUnit::tick(sim::Cycle now) {
    for (RegionState& r : regions_) {
        if (!r.config.regulated()) { continue; }
        if (now - r.period_start >= r.config.period_cycles) {
            r.period_start += r.config.period_cycles;
            ++r.periods_elapsed;
            r.bytes_this_period = 0;
            // Fresh credit each period; an overdraft (negative credit from a
            // burst charged past zero) is repaid first, so a manager cannot
            // bank unused bandwidth or profit from overshooting.
            r.credit += static_cast<std::int64_t>(r.config.budget_bytes);
            r.credit = std::min(r.credit, static_cast<std::int64_t>(r.config.budget_bytes));
        }
    }
}

sim::Cycle MonitorRegulationUnit::next_replenish_cycle() const noexcept {
    sim::Cycle next = sim::kNoCycle;
    for (const RegionState& r : regions_) {
        if (!r.config.regulated()) { continue; }
        next = std::min(next, r.period_start + r.config.period_cycles);
    }
    return next;
}

std::optional<std::uint32_t> MonitorRegulationUnit::region_of(axi::Addr addr) const noexcept {
    for (std::uint32_t i = 0; i < regions_.size(); ++i) {
        if (regions_[i].config.contains(addr)) { return i; }
    }
    return std::nullopt;
}

bool MonitorRegulationUnit::admission_open() const noexcept {
    return std::none_of(regions_.begin(), regions_.end(), [](const RegionState& r) {
        return r.config.regulated() && r.credit <= 0;
    });
}

void MonitorRegulationUnit::charge(axi::Addr addr, std::uint64_t bytes) {
    const auto idx = region_of(addr);
    if (!idx) {
        ++unmatched_txns_;
        return;
    }
    RegionState& r = regions_[*idx];
    r.bytes_this_period += bytes;
    r.bytes_total += bytes;
    ++r.txns_total;
    if (r.config.regulated()) {
        const bool was_positive = r.credit > 0;
        r.credit -= static_cast<std::int64_t>(bytes);
        if (was_positive && r.credit <= 0) { ++r.depletion_events; }
    }
}

void MonitorRegulationUnit::record_completion(std::optional<std::uint32_t> region,
                                              sim::Cycle latency, bool is_write) {
    if (!region) { return; }
    RegionState& r = regions_.at(*region);
    (is_write ? r.write_latency : r.read_latency).record(latency);
}

std::uint32_t MonitorRegulationUnit::allowed_outstanding(
    std::uint32_t max_pending) const noexcept {
    if (!throttle_enabled_) { return max_pending; }
    double worst_fraction = 1.0;
    for (const RegionState& r : regions_) {
        if (!r.config.regulated()) { continue; }
        const double fraction =
            std::max(0.0, static_cast<double>(r.credit) /
                              static_cast<double>(r.config.budget_bytes));
        worst_fraction = std::min(worst_fraction, fraction);
    }
    const auto allowed = static_cast<std::uint32_t>(
        static_cast<double>(max_pending) * worst_fraction + 0.5);
    return std::clamp<std::uint32_t>(allowed, 1, max_pending);
}

} // namespace realm::rt
