#include "soc/cheshire_soc.hpp"

#include "ic/addr_map.hpp"
#include "sim/check.hpp"

#include <utility>

namespace realm::soc {

namespace {
constexpr std::uint32_t kLlcPort = 0;
constexpr std::uint32_t kSpmPort = 1;
constexpr std::uint32_t kCfgPort = 2;
constexpr std::uint32_t kErrPort = 3;
} // namespace

CheshireSoc::CheshireSoc(sim::SimContext& ctx, SocConfig config)
    : ctx_{&ctx}, cfg_{config} {
    REALM_EXPECTS(cfg_.num_dsa >= 1, "SoC needs at least one DSA port");

    // --- Channels -----------------------------------------------------------
    core_port_ = std::make_unique<axi::AxiChannel>(ctx, "core");
    for (std::uint32_t i = 0; i < cfg_.num_dsa; ++i) {
        dsa_ports_.push_back(
            std::make_unique<axi::AxiChannel>(ctx, "dsa" + std::to_string(i)));
    }
    hwrot_port_ = std::make_unique<axi::AxiChannel>(ctx, "hwrot");
    if (cfg_.realm_present) {
        // Response channels pass through so each REALM unit adds exactly one
        // cycle (request path only); the units tick after the crossbar.
        for (std::uint32_t i = 0; i < 1 + cfg_.num_dsa; ++i) {
            realm_down_.push_back(std::make_unique<axi::AxiChannel>(
                ctx, "realm_down" + std::to_string(i), 2, /*resp_passthrough=*/true));
        }
    }
    llc_up_ = std::make_unique<axi::AxiChannel>(ctx, "llc_up");
    llc_down_ = std::make_unique<axi::AxiChannel>(ctx, "llc_down");
    spm_ch_ = std::make_unique<axi::AxiChannel>(ctx, "spm");
    cfg_ch_ = std::make_unique<axi::AxiChannel>(ctx, "cfg");
    err_ch_ = std::make_unique<axi::AxiChannel>(ctx, "err");

    // --- Components (construction order == evaluation order) ----------------
    boot_master_ = std::make_unique<ConfigMaster>(ctx, "hwrot", *hwrot_port_);

    llc_ = std::make_unique<mem::Llc>(ctx, "llc", *llc_up_, *llc_down_, cfg_.llc);
    dram_slave_ = std::make_unique<mem::AxiMemSlave>(
        ctx, "dram", *llc_down_, std::make_unique<mem::DramBackend>(cfg_.dram),
        mem::AxiMemSlaveConfig{8, 8, /*base=*/0});
    // Sparse backing stores are addressed with absolute bus addresses, so no
    // rebasing is needed (and test/bench code can index images directly).
    spm_slave_ = std::make_unique<mem::AxiMemSlave>(
        ctx, "spm", *spm_ch_, std::make_unique<mem::SramBackend>(1, 1),
        mem::AxiMemSlaveConfig{8, 8, /*base=*/0});
    err_slave_ = std::make_unique<mem::ErrorSlave>(ctx, "err", *err_ch_);

    ic::AddrMap map;
    map.add(cfg_.dram_base, cfg_.dram_size, kLlcPort, "dram/llc");
    map.add(cfg_.spm_base, cfg_.spm_size, kSpmPort, "spm");
    map.add(cfg_.cfg_base, cfg_.cfg_size, kCfgPort, "realm-cfg");

    std::vector<axi::AxiChannel*> mgrs;
    mgrs.push_back(hwrot_port_.get());
    if (cfg_.realm_present) {
        for (auto& ch : realm_down_) { mgrs.push_back(ch.get()); }
    } else {
        mgrs.push_back(core_port_.get());
        for (auto& ch : dsa_ports_) { mgrs.push_back(ch.get()); }
    }
    ic::XbarConfig xcfg;
    xcfg.default_port = kErrPort;
    xcfg.arbitration = cfg_.arbitration;
    xbar_ = std::make_unique<ic::AxiXbar>(
        ctx, "xbar", std::move(mgrs),
        std::vector<axi::AxiChannel*>{llc_up_.get(), spm_ch_.get(), cfg_ch_.get(),
                                      err_ch_.get()},
        map, xcfg);

    if (cfg_.realm_present) {
        realm_units_.push_back(std::make_unique<rt::RealmUnit>(
            ctx, "realm.core", *core_port_, *realm_down_[0], cfg_.realm));
        for (std::uint32_t i = 0; i < cfg_.num_dsa; ++i) {
            realm_units_.push_back(std::make_unique<rt::RealmUnit>(
                ctx, "realm.dsa" + std::to_string(i), *dsa_ports_[i], *realm_down_[1 + i],
                cfg_.realm));
        }
        std::vector<rt::RealmUnit*> unit_ptrs;
        for (auto& u : realm_units_) { unit_ptrs.push_back(u.get()); }
        regfile_ = std::make_unique<cfg::RealmRegFile>(std::move(unit_ptrs));
        guard_ = std::make_unique<cfg::BusGuard>(*regfile_);
        cfg_adapter_ = std::make_unique<cfg::AxiToReg>(ctx, "cfg", *cfg_ch_, *guard_,
                                                       cfg_.cfg_base);
    } else {
        // Config space still decodes (to keep the map identical) but has
        // nothing behind it; terminate it as an error region.
        struct NullTarget final : cfg::RegTarget {
            cfg::RegRsp reg_access(const cfg::RegReq&) override {
                return cfg::RegRsp::err();
            }
        };
        static NullTarget null_target;
        cfg_adapter_ = std::make_unique<cfg::AxiToReg>(ctx, "cfg", *cfg_ch_, null_target,
                                                       cfg_.cfg_base);
    }
}

void CheshireSoc::warm_llc(axi::Addr base, std::uint64_t bytes) {
    llc_->warm_range(base, bytes, dram_image());
}

void CheshireSoc::queue_boot_script(const std::vector<BootRegionPlan>& per_unit_plans) {
    REALM_EXPECTS(cfg_.realm_present, "no REALM units to configure");
    REALM_EXPECTS(per_unit_plans.size() == realm_units_.size(),
                  "one boot plan per REALM unit required");
    ConfigMaster& bm = *boot_master_;
    using RF = cfg::RealmRegFile;
    const axi::Addr base = cfg_.cfg_base;

    // 1. Claim the guarded configuration space (HWRoT boot sequence).
    bm.push_write(base + cfg::BusGuard::kGuardOffset, 0);

    for (std::uint32_t u = 0; u < per_unit_plans.size(); ++u) {
        const BootRegionPlan& plan = per_unit_plans[u];
        // 2. Fragmentation granularity.
        bm.push_write(base + RF::unit_reg(u, RF::kFragment), plan.fragment_beats);
        // 3. Region 0 covers the LLC-backed DRAM span.
        const axi::Addr r0 = base;
        bm.push_write(r0 + RF::region_reg(u, 0, RF::kStartLo),
                      static_cast<std::uint32_t>(cfg_.dram_base));
        bm.push_write(r0 + RF::region_reg(u, 0, RF::kStartHi),
                      static_cast<std::uint32_t>(cfg_.dram_base >> 32));
        const axi::Addr dram_end = cfg_.dram_base + cfg_.dram_size;
        bm.push_write(r0 + RF::region_reg(u, 0, RF::kEndLo),
                      static_cast<std::uint32_t>(dram_end));
        bm.push_write(r0 + RF::region_reg(u, 0, RF::kEndHi),
                      static_cast<std::uint32_t>(dram_end >> 32));
        bm.push_write(r0 + RF::region_reg(u, 0, RF::kBudgetLo),
                      static_cast<std::uint32_t>(plan.budget_bytes));
        bm.push_write(r0 + RF::region_reg(u, 0, RF::kBudgetHi),
                      static_cast<std::uint32_t>(plan.budget_bytes >> 32));
        bm.push_write(r0 + RF::region_reg(u, 0, RF::kPeriodLo),
                      static_cast<std::uint32_t>(plan.period_cycles));
        bm.push_write(r0 + RF::region_reg(u, 0, RF::kPeriodHi),
                      static_cast<std::uint32_t>(plan.period_cycles >> 32));
    }
}

} // namespace realm::soc
