/// Tests for the credited NoC transport (noc/credit.hpp): wormhole link
/// serialization and VC bounds (multi-VC links included), end-to-end
/// credit pools with delayed credit returns (credits riding the response
/// network, conservation asserted on every transition), whole-fabric
/// credit conservation asserted every cycle under the worst DoS-matrix
/// cell, flow-control config hashing/resume (different transport knobs or
/// routing policies must never alias), and scheduler equivalence under
/// deliberately tight credits.
#include "noc/credit.hpp"
#include "noc/mesh.hpp"
#include "noc/ring.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/topology.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

namespace realm::noc {
namespace {

using scenario::ScenarioConfig;
using scenario::ScenarioResult;
using scenario::Sweep;
using scenario::SweepPoint;
using scenario::TopologyKind;

// --- CreditPool --------------------------------------------------------------

TEST(CreditPool, TakeReleaseConservation) {
    CreditPool pool{8};
    EXPECT_EQ(pool.available(), 8U);
    EXPECT_EQ(pool.in_flight(), 0U);
    pool.check_conserved();

    EXPECT_TRUE(pool.can_take(8));
    EXPECT_FALSE(pool.can_take(9));
    pool.take(5);
    EXPECT_EQ(pool.available(), 3U);
    EXPECT_EQ(pool.in_flight(), 5U);
    pool.check_conserved();

    pool.release(2);
    EXPECT_EQ(pool.available(), 5U);
    EXPECT_EQ(pool.in_flight(), 3U);
    pool.check_conserved();

    pool.release(3);
    EXPECT_EQ(pool.available(), 8U);
    pool.check_conserved();
}

TEST(CreditPool, OverTakeAndOverReleaseAreContractViolations) {
    CreditPool pool{4};
    EXPECT_THROW(pool.take(5), sim::ContractViolation);
    pool.take(4);
    EXPECT_THROW(pool.release(5), sim::ContractViolation);
}

TEST(NocFlowConfig, ValidationRejectsUnderSizedBuffers) {
    NocFlowConfig fc;
    fc.vc_depth = fc.flits_per_packet - 1; // cannot hold one worm
    EXPECT_THROW(fc.validate(), sim::ContractViolation);
    fc = NocFlowConfig{};
    fc.e2e_credits = fc.flits_per_packet; // AW header would starve its data
    EXPECT_THROW(fc.validate(), sim::ContractViolation);
    fc = NocFlowConfig{};
    fc.flits_per_packet = 256; // would truncate NocPacket::flits (8-bit)
    fc.vc_depth = 512;
    fc.e2e_credits = 1024;
    EXPECT_THROW(fc.validate(), sim::ContractViolation);
}

TEST(CreditPool, DelayedReturnsRideTheResponseNetwork) {
    // release_at keeps the credits in flight until the ready cycle:
    // conservation holds through the whole pending window, and settle
    // matures exactly the returns whose cycle has arrived.
    CreditPool pool{8};
    pool.take(6);
    pool.release_at(/*ready_at=*/10, 4);
    EXPECT_EQ(pool.available(), 2U);
    EXPECT_EQ(pool.in_flight(), 6U) << "pending returns still count in flight";
    EXPECT_EQ(pool.pending_returns(), 4U);
    pool.check_conserved();

    pool.settle(9);
    EXPECT_EQ(pool.available(), 2U) << "not matured yet";
    pool.settle(10);
    EXPECT_EQ(pool.available(), 6U);
    EXPECT_EQ(pool.pending_returns(), 0U);
    pool.check_conserved();

    // Releasing more than the worm-held share (in flight minus pending) is
    // a leak and trips the contract.
    pool.release_at(20, 2);
    EXPECT_THROW(pool.release(1), sim::ContractViolation);
}

// --- NocLink -----------------------------------------------------------------

NocPacket worm_of(std::uint32_t flits) {
    NocPacket pkt;
    pkt.flits = static_cast<std::uint8_t>(flits);
    pkt.flit = axi::RFlit{};
    return pkt;
}

TEST(NocLink, WormSerializesOneFlitPerCycle) {
    sim::SimContext ctx;
    NocFlowConfig fc; // credited, 4 flits per worm, vc_depth 8
    NocLink link{ctx, "l", fc};

    ASSERT_TRUE(link.can_push(4));
    link.push(worm_of(4));
    // The channel is busy until the tail flit leaves, 4 cycles later —
    // even though the VC still has 4 free flit slots.
    EXPECT_FALSE(link.can_push(1));
    for (int c = 0; c < 3; ++c) {
        ctx.step();
        EXPECT_FALSE(link.can_push(1)) << "cycle " << c;
    }
    ctx.step();
    EXPECT_TRUE(link.can_push(4));
    // Header latency is still one cycle: the packet was poppable long
    // before the serialization window closed (wormhole, not
    // store-and-forward).
    EXPECT_TRUE(link.can_pop());
}

TEST(NocLink, VcOccupancyIsBoundedAndAsserted) {
    sim::SimContext ctx;
    NocFlowConfig fc;
    fc.vc_depth = 8;
    NocLink link{ctx, "l", fc};

    link.push(worm_of(4));
    for (int c = 0; c < 4; ++c) { ctx.step(); }
    link.push(worm_of(4)); // 8 flits buffered: at the bound
    EXPECT_EQ(link.buffered_flits(), 8U);
    for (int c = 0; c < 4; ++c) { ctx.step(); }
    EXPECT_FALSE(link.can_push(1)) << "VC full: no free flit slot";
    EXPECT_NO_THROW(link.check_bounded());
    // Draining one worm frees its flits.
    (void)link.pop();
    EXPECT_EQ(link.buffered_flits(), 4U);
    EXPECT_TRUE(link.can_push(4));
    EXPECT_EQ(link.peak_buffered_flits(), 8U);
}

TEST(NocLink, VirtualChannelsHavePrivateBuffersAndASharedChannel) {
    // The O1TURN deadlock argument rests on exactly this: a full VC 0 must
    // not take buffer space VC 1 needs, while the physical channel's
    // serialization window is shared (a time bound, not a held resource).
    sim::SimContext ctx;
    NocFlowConfig fc;
    fc.vc_depth = 4;
    NocLink link{ctx, "l", fc, /*num_vcs=*/2};

    NocPacket w0 = worm_of(4);
    link.push(w0); // fills VC 0 and opens a 4-cycle serialization window
    EXPECT_FALSE(link.can_push(4, 0)) << "VC 0 full";
    EXPECT_FALSE(link.can_push(4, 1)) << "channel busy serializing the worm";
    for (int c = 0; c < 4; ++c) { ctx.step(); }
    EXPECT_FALSE(link.can_push(4, 0)) << "VC 0 still full";
    EXPECT_TRUE(link.can_push(4, 1)) << "VC 1 buffers are private";
    NocPacket w1 = worm_of(4);
    w1.vc = 1;
    link.push(w1);
    EXPECT_EQ(link.buffered_flits(0), 4U);
    EXPECT_EQ(link.buffered_flits(1), 4U);
    EXPECT_NO_THROW(link.check_bounded());
    // Per-VC pop: draining VC 1 frees only VC 1.
    for (int c = 0; c < 4; ++c) { ctx.step(); }
    ASSERT_TRUE(link.can_pop(1));
    (void)link.pop(1);
    EXPECT_EQ(link.buffered_flits(1), 0U);
    EXPECT_EQ(link.buffered_flits(0), 4U);
}

// --- Whole-fabric conservation under the worst DoS cell ----------------------

/// Returns the config of the named cell of a registered sweep.
ScenarioConfig cell_config(const std::string& sweep_name, const std::string& label) {
    Sweep sweep = scenario::make_sweep(sweep_name);
    for (const SweepPoint& p : sweep.points) {
        if (p.label == label) { return p.config; }
    }
    ADD_FAILURE() << sweep_name << " has no cell " << label;
    return {};
}

/// Drives one NoC scenario config by hand — fabric via `make_topology`,
/// interference DMAs and the stream victim attached like `run_scenario`
/// does — so the test can step cycle by cycle and assert the fabric's
/// flow-control invariants at *every* cycle, not just sample them.
void step_and_check_invariants(const ScenarioConfig& cfg, sim::Cycle cycles) {
    sim::SimContext ctx;
    auto topo = scenario::make_topology(ctx, cfg);
    std::vector<std::unique_ptr<traffic::DmaEngine>> dmas;
    for (std::size_t i = 0; i < cfg.interference.size(); ++i) {
        const scenario::InterferenceConfig& irq = cfg.interference[i];
        dmas.push_back(std::make_unique<traffic::DmaEngine>(
            ctx, "atk" + std::to_string(i), topo->interference_port(i), irq.dma));
        dmas.back()->push_job(traffic::DmaJob{irq.src, irq.dst, irq.bytes, irq.loop});
    }
    traffic::StreamWorkload victim{cfg.victim.stream};
    traffic::CoreModel core{ctx, "victim", topo->victim_port(), victim};
    for (sim::Cycle c = 0; c < cycles; ++c) {
        ctx.step();
        ASSERT_NO_THROW(topo->check_flow_invariants()) << "cycle " << ctx.now();
    }
    EXPECT_GT(topo->fabric_hops(), 0U) << "traffic must actually cross the fabric";
}

TEST(CreditConservation, HoldsEveryCycleUnderTheWorstMeshDosCell) {
    // 9atk/wstall/none is the heaviest matrix cell: nine stalling writers,
    // no regulation, attackers' write buffers stripped. Total credits in
    // flight + held == configured pool, staged NI flits within the pool,
    // and every VC within vc_depth — asserted each of 15k cycles.
    step_and_check_invariants(cell_config("mesh-dos-matrix", "9atk/wstall/none"),
                              15000);
}

TEST(CreditConservation, HoldsEveryCycleOnTheTightCreditRing) {
    // The tight-credit smoke (vc_depth = one worm, e2e_credits = 8) keeps
    // the fabric permanently credit-limited — the regime where a release
    // miscount would surface fastest.
    step_and_check_invariants(cell_config("ring-credit-dos-smoke", "2atk/hog/none"),
                              15000);
}

// --- Delayed credit returns: A/B, conservation, and no-alias hashing ---------

TEST(CreditReturnDelay, DelayedReturnsCompleteAndBoundSoloThroughput) {
    // A contended cell with credits riding the response network for 16
    // cycles still completes (no leak, no deadlock). Note the *victim* may
    // even speed up there — slow credit round trips throttle the
    // credit-hungry attackers hardest — so the monotonicity check runs on
    // the uncontended cell, where the victim is the only credit consumer
    // and a slower loop can only cost cycles.
    ScenarioConfig contended = cell_config("ring-dos-smoke", "2atk/hog/none");
    contended.topology.ring.credit_return_delay = 16;
    const ScenarioResult delayed = run_scenario(contended, "delay16");
    EXPECT_TRUE(delayed.boot_ok);
    EXPECT_FALSE(delayed.timed_out);
    EXPECT_GT(delayed.ops, 0U);
    EXPECT_GT(delayed.fabric_hops, 0U);

    ScenarioConfig solo = cell_config("ring-contention", "N=6 solo");
    const ScenarioResult solo_instant = run_scenario(solo, "solo-delay0");
    solo.topology.ring.credit_return_delay = 16;
    const ScenarioResult solo_delayed = run_scenario(solo, "solo-delay16");
    ASSERT_FALSE(solo_instant.timed_out);
    ASSERT_FALSE(solo_delayed.timed_out);
    EXPECT_GE(solo_delayed.run_cycles, solo_instant.run_cycles)
        << "slower credit round trips cannot speed an uncontended victim up";
    // Default delay 0 is the historical behaviour: bit-identical numbers.
    ScenarioConfig again = cell_config("ring-contention", "N=6 solo");
    const ScenarioResult solo_repeat = run_scenario(again, "solo-again");
    EXPECT_EQ(solo_repeat.run_cycles, solo_instant.run_cycles);
    EXPECT_EQ(solo_repeat.load_lat_max, solo_instant.load_lat_max);
}

TEST(CreditReturnDelay, ConservationHoldsEveryCycleUnderDelayedReturns) {
    // The satellite contract: with credit_return_delay the pending returns
    // are part of the in-flight count, and whole-fabric conservation is
    // asserted on every cycle of a contended run (not sampled).
    ScenarioConfig cfg = cell_config("mesh-dos-smoke", "2atk/wstall/none");
    cfg.topology.mesh.credit_return_delay = 8;
    step_and_check_invariants(cfg, 10000);
}

TEST(FlowControlHash, TransportKnobsNeverAlias) {
    const ScenarioConfig base = cell_config("ring-dos-smoke", "1atk/hog/none");
    ScenarioConfig c = base;
    c.topology.ring.flits_per_packet = 8;
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
    c = base;
    c.topology.ring.vc_depth = 16;
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
    c = base;
    c.topology.ring.e2e_credits = 64;
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
    c = base;
    c.topology.ring.credit_return_delay = 4;
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
}

TEST(FlowControlResume, DelayedPointIsNeverServedFromAnInstantDump) {
    // `--json PATH --resume` keys on config_hash (v4 mixes the
    // credit-return delay): a dump produced with instantaneous returns
    // must not satisfy a delayed point, and vice versa — a resume alias
    // here would silently report the wrong round-trip numbers.
    const std::string path = "flow_ab_resume.json";
    Sweep instant;
    instant.name = "flow-ab";
    ScenarioConfig cfg = cell_config("ring-dos-smoke", "1atk/hog/budget");
    cfg.victim.stream.repeat = 1; // keep the test quick
    instant.points.push_back({"cell", cfg});

    const scenario::ScenarioRunner runner{scenario::RunnerOptions{.threads = 1}};
    ASSERT_TRUE(scenario::write_json_file(path, instant, runner.run(instant)));

    Sweep delayed = instant;
    delayed.points[0].config.topology.ring.credit_return_delay = 8;
    std::size_t reused = ~std::size_t{0};
    (void)runner.run_resumed(delayed, path, &reused);
    EXPECT_EQ(reused, 0U) << "delayed point aliased an instant-return dump";

    // The matching config *is* reused — resume still works.
    (void)runner.run_resumed(instant, path, &reused);
    EXPECT_EQ(reused, 1U);
    std::remove(path.c_str());
}

// --- Scheduler equivalence under tight credits -------------------------------

void expect_bit_identical(const ScenarioResult& naive, const ScenarioResult& fast) {
    ASSERT_FALSE(naive.timed_out);
    EXPECT_EQ(naive.run_cycles, fast.run_cycles);
    EXPECT_EQ(naive.ops, fast.ops);
    EXPECT_EQ(naive.load_lat_mean, fast.load_lat_mean);
    EXPECT_EQ(naive.load_lat_max, fast.load_lat_max);
    EXPECT_EQ(naive.load_lat_p99, fast.load_lat_p99);
    EXPECT_EQ(naive.store_lat_mean, fast.store_lat_mean);
    EXPECT_EQ(naive.store_lat_max, fast.store_lat_max);
    EXPECT_EQ(naive.dma_bytes, fast.dma_bytes);
    EXPECT_EQ(naive.xbar_w_stalls, fast.xbar_w_stalls);
    EXPECT_EQ(naive.fabric_hops, fast.fabric_hops);
    EXPECT_EQ(naive.simulated_cycles, fast.simulated_cycles);
    EXPECT_EQ(naive.ticks_skipped, 0U);
    EXPECT_GT(fast.ticks_skipped, 0U) << "idle components must be skipped";
}

TEST(CreditSchedulerEquivalence, TightCreditRingMatchesTickAllBitForBit) {
    // Credit waits and serialization windows must honour the idle/wake
    // contract too: a node waiting for credits holds a flit somewhere it
    // drains from and therefore never sleeps through the release.
    ScenarioConfig cfg = cell_config("ring-credit-dos-smoke", "1atk/wstall/none");
    cfg.scheduler = sim::Scheduler::kTickAll;
    const ScenarioResult naive = scenario::run_scenario(cfg);
    cfg.scheduler = sim::Scheduler::kActivity;
    const ScenarioResult fast = scenario::run_scenario(cfg);
    expect_bit_identical(naive, fast);
}

TEST(CreditSchedulerEquivalence, TightCreditMeshMatchesTickAllBitForBit) {
    ScenarioConfig cfg = cell_config("mesh-credit-dos-smoke", "2atk/hog/none");
    cfg.scheduler = sim::Scheduler::kTickAll;
    const ScenarioResult naive = scenario::run_scenario(cfg);
    cfg.scheduler = sim::Scheduler::kActivity;
    const ScenarioResult fast = scenario::run_scenario(cfg);
    expect_bit_identical(naive, fast);
}

} // namespace
} // namespace realm::noc
