#include "noc/mesh.hpp"

#include "sim/check.hpp"

#include <string>
#include <utility>

namespace realm::noc {

std::optional<MeshDir> xy_next_hop(std::uint8_t cols, std::uint8_t cur,
                                   std::uint8_t dest) noexcept {
    if (cur == dest) { return std::nullopt; }
    const std::uint8_t cur_col = cur % cols;
    const std::uint8_t dest_col = dest % cols;
    if (dest_col > cur_col) { return MeshDir::kEast; }
    if (dest_col < cur_col) { return MeshDir::kWest; }
    return dest / cols > cur / cols ? MeshDir::kSouth : MeshDir::kNorth;
}

// ---------------------------------------------------------------------------
// MeshRouter
// ---------------------------------------------------------------------------

MeshRouter::MeshRouter(sim::SimContext& ctx, std::string name, std::uint8_t node_id,
                       std::uint8_t cols, ic::AddrMap map, axi::AxiChannel* local_mgr,
                       std::vector<axi::AxiChannel*> egress, Ports ports,
                       const NocFlowConfig& fc, CreditBook* book)
    : Component{ctx, std::move(name)},
      id_{node_id},
      cols_{cols},
      map_{std::move(map)},
      local_mgr_{local_mgr},
      egress_{std::move(egress)},
      ports_{ports},
      ni_{this->name(), fc, book} {
    // Activity-aware kernel wiring: every neighbor link feeding this router
    // has exactly one consumer (this router), so claiming the push hooks is
    // safe; the local manager and egress channels follow the ring-NI scheme.
    for (std::size_t d = 0; d < kMeshDirs; ++d) {
        if (ports_.req_in[d] != nullptr) { ports_.req_in[d]->set_wake_on_push(this); }
        if (ports_.rsp_in[d] != nullptr) { ports_.rsp_in[d]->set_wake_on_push(this); }
    }
    if (local_mgr_ != nullptr) { local_mgr_->wake_subordinate_on_request(*this); }
    for (axi::AxiChannel* ch : egress_) {
        if (ch != nullptr) { ch->wake_manager_on_response(*this); }
    }
}

void MeshRouter::reset() {
    ni_.reset();
    req_rr_ = 0;
    rsp_rr_ = 0;
    req_out_used_.fill(false);
    rsp_out_used_.fill(false);
    injected_ = 0;
    ejected_ = 0;
    forwarded_ = 0;
    stalls_ = 0;
}

void MeshRouter::service_network(bool request_net) {
    auto& in = request_net ? ports_.req_in : ports_.rsp_in;
    auto& out = request_net ? ports_.req_out : ports_.rsp_out;
    auto& used = request_net ? req_out_used_ : rsp_out_used_;
    auto& rr = request_net ? req_rr_ : rsp_rr_;
    used.fill(false);

    // Every input port may advance its head packet this cycle; the ejection
    // port (like the ring NI) and each output port take one packet at most.
    // Rotating input priority keeps merge points fair under sustained
    // contention; the pointer only moves when a packet moved, so idle ticks
    // stay no-ops.
    bool eject_done = false;
    bool any_moved = false;
    std::uint8_t first_moved = 0;
    for (std::uint8_t k = 0; k < kMeshDirs; ++k) {
        const auto d = static_cast<std::uint8_t>((rr + k) % kMeshDirs);
        NocLink* link = in[d];
        if (link == nullptr || !link->can_pop()) { continue; }
        const NocPacket& pkt = link->front();
        const auto hop = xy_next_hop(cols_, id_, pkt.dest);
        if (!hop.has_value()) {
            if (eject_done) {
                ++stalls_;
                continue;
            }
            const bool ok = request_net ? ni_.try_eject_request(pkt, egress_)
                                        : ni_.try_eject_response(pkt, local_mgr_);
            if (ok) {
                (void)link->pop();
                ++ejected_;
                eject_done = true;
                if (!any_moved) {
                    any_moved = true;
                    first_moved = d;
                }
            } else {
                ++stalls_;
            }
            continue;
        }
        // A packet arriving from direction d travels away from d; XY order
        // makes the route monotonic per dimension, so it never turns back.
        REALM_ENSURES(*hop != static_cast<MeshDir>(d),
                      name() + ": 180-degree turn in XY route");
        const auto h = static_cast<std::size_t>(*hop);
        NocLink* o = out[h];
        REALM_ENSURES(o != nullptr, name() + ": XY route leaves the mesh");
        if (!used[h] && o->can_push(pkt)) {
            o->push(link->pop());
            used[h] = true;
            ++forwarded_;
            if (!any_moved) {
                any_moved = true;
                first_moved = d;
            }
        } else {
            ++stalls_;
        }
    }
    if (any_moved) { rr = static_cast<std::uint8_t>((first_moved + 1) % kMeshDirs); }
}

NocLink* MeshRouter::route_out(bool request_net, std::uint8_t dest,
                               std::uint32_t flits) {
    const auto hop = xy_next_hop(cols_, id_, dest);
    REALM_EXPECTS(hop.has_value(),
                  name() + ": a mesh node does not route packets to itself");
    auto& out = request_net ? ports_.req_out : ports_.rsp_out;
    auto& used = request_net ? req_out_used_ : rsp_out_used_;
    const auto h = static_cast<std::size_t>(*hop);
    NocLink* o = out[h];
    REALM_ENSURES(o != nullptr, name() + ": XY route leaves the mesh");
    if (used[h] || !o->can_push(flits)) { return nullptr; }
    used[h] = true; // the NI pushes unconditionally into a granted link
    return o;
}

void MeshRouter::inject_requests() {
    if (local_mgr_ == nullptr) { return; }
    if (ni_.inject_requests(id_, *local_mgr_, map_,
                            [this](std::uint8_t dest, std::uint32_t flits) {
                                return route_out(/*request_net=*/true, dest, flits);
                            })) {
        ++injected_;
    }
}

void MeshRouter::inject_responses() {
    if (egress_.empty()) { return; }
    if (ni_.inject_responses(id_, egress_,
                             [this](std::uint8_t dest, std::uint32_t flits) {
                                 return route_out(/*request_net=*/false, dest, flits);
                             })) {
        ++injected_;
    }
}

void MeshRouter::tick() {
    service_network(/*request_net=*/false);
    service_network(/*request_net=*/true);
    inject_responses();
    inject_requests();
    update_activity();
}

void MeshRouter::update_activity() {
    // Conservative idle contract, same shape as the ring node: a tick is a
    // no-op iff nothing this router consumes holds a flit (`empty()`, not
    // `can_pop()` — a flit pushed this cycle needs us next cycle). Credit
    // waits and link serialization windows enable no new work by
    // themselves; progress always rides on a held flit, which keeps us
    // awake through the checks below.
    for (std::size_t d = 0; d < kMeshDirs; ++d) {
        if (ports_.req_in[d] != nullptr && !ports_.req_in[d]->empty()) { return; }
        if (ports_.rsp_in[d] != nullptr && !ports_.rsp_in[d]->empty()) { return; }
    }
    if (local_mgr_ != nullptr && !local_mgr_->requests_empty()) { return; }
    for (const axi::AxiChannel* ch : egress_) {
        if (ch != nullptr && !ch->responses_empty()) { return; }
    }
    idle_forever();
}

// ---------------------------------------------------------------------------
// NocMesh
// ---------------------------------------------------------------------------

NocMesh::NocMesh(sim::SimContext& ctx, std::string name, std::uint8_t rows,
                 std::uint8_t cols, ic::AddrMap node_map,
                 std::vector<std::uint8_t> subordinate_nodes, NocFlowConfig flow)
    : rows_{rows}, cols_{cols}, flow_{flow} {
    const std::uint32_t n32 = static_cast<std::uint32_t>(rows) * cols;
    REALM_EXPECTS(n32 >= 2, "a mesh needs at least two nodes");
    REALM_EXPECTS(n32 <= 255, "node ids are 8-bit");
    flow_.validate();
    const auto n = static_cast<std::uint8_t>(n32);
    sub_index_.assign(n, -1);
    for (const std::uint8_t s : subordinate_nodes) {
        REALM_EXPECTS(s < n, "subordinate node out of range");
    }
    if (flow_.mode == FlowControl::kCredited) {
        book_ = std::make_unique<CreditBook>(n, flow_);
    }

    // Channels and links first (plain objects, no tick order concerns).
    const auto make_link = [&](std::vector<std::unique_ptr<NocLink>>& v,
                               std::uint8_t i, const char* tag) {
        v[i] = std::make_unique<NocLink>(ctx, name + tag + std::to_string(i), flow_);
    };
    h_req_fwd_.resize(n);
    h_req_rev_.resize(n);
    h_rsp_fwd_.resize(n);
    h_rsp_rev_.resize(n);
    v_req_fwd_.resize(n);
    v_req_rev_.resize(n);
    v_rsp_fwd_.resize(n);
    v_rsp_rev_.resize(n);
    for (std::uint8_t i = 0; i < n; ++i) {
        mgr_ports_.push_back(std::make_unique<axi::AxiChannel>(
            ctx, name + ".mgr" + std::to_string(i)));
        if (i % cols != cols - 1U) { // east neighbor exists
            make_link(h_req_fwd_, i, ".hreq_e");
            make_link(h_req_rev_, i, ".hreq_w");
            make_link(h_rsp_fwd_, i, ".hrsp_e");
            make_link(h_rsp_rev_, i, ".hrsp_w");
        }
        if (i / cols != rows - 1U) { // south neighbor exists
            make_link(v_req_fwd_, i, ".vreq_s");
            make_link(v_req_rev_, i, ".vreq_n");
            make_link(v_rsp_fwd_, i, ".vrsp_s");
            make_link(v_rsp_rev_, i, ".vrsp_n");
        }
    }
    egress_.resize(n);
    for (const std::uint8_t s : subordinate_nodes) {
        std::vector<axi::AxiChannel*> egress_raw;
        for (std::uint8_t src = 0; src < n; ++src) {
            egress_[s].push_back(std::make_unique<axi::AxiChannel>(
                ctx, name + ".eg" + std::to_string(s) + "_" + std::to_string(src),
                staging_depth(flow_)));
            if (book_ != nullptr) {
                wire_credit_returns(*egress_[s].back(), book_->req(s, src), flow_);
            }
            egress_raw.push_back(egress_[s].back().get());
        }
        sub_index_[s] = static_cast<int>(sub_ports_.size());
        sub_ports_.push_back(std::make_unique<axi::AxiChannel>(
            ctx, name + ".sub" + std::to_string(s)));
        muxes_.push_back(std::make_unique<ic::AxiMux>(ctx, name + ".mux" + std::to_string(s),
                                                      std::move(egress_raw),
                                                      *sub_ports_.back()));
    }

    // Routers last, in node order (construction order fixes tick order).
    const auto dir = [](MeshDir d) { return static_cast<std::size_t>(d); };
    for (std::uint8_t i = 0; i < n; ++i) {
        std::vector<axi::AxiChannel*> egress_raw;
        for (const auto& ch : egress_[i]) { egress_raw.push_back(ch.get()); }

        MeshRouter::Ports p;
        if (i % cols != cols - 1U) { // east neighbor at i+1
            p.req_out[dir(MeshDir::kEast)] = h_req_fwd_[i].get();
            p.req_in[dir(MeshDir::kEast)] = h_req_rev_[i].get();
            p.rsp_out[dir(MeshDir::kEast)] = h_rsp_fwd_[i].get();
            p.rsp_in[dir(MeshDir::kEast)] = h_rsp_rev_[i].get();
        }
        if (i % cols != 0U) { // west neighbor at i-1
            p.req_out[dir(MeshDir::kWest)] = h_req_rev_[i - 1].get();
            p.req_in[dir(MeshDir::kWest)] = h_req_fwd_[i - 1].get();
            p.rsp_out[dir(MeshDir::kWest)] = h_rsp_rev_[i - 1].get();
            p.rsp_in[dir(MeshDir::kWest)] = h_rsp_fwd_[i - 1].get();
        }
        if (i / cols != rows - 1U) { // south neighbor at i+cols
            p.req_out[dir(MeshDir::kSouth)] = v_req_fwd_[i].get();
            p.req_in[dir(MeshDir::kSouth)] = v_req_rev_[i].get();
            p.rsp_out[dir(MeshDir::kSouth)] = v_rsp_fwd_[i].get();
            p.rsp_in[dir(MeshDir::kSouth)] = v_rsp_rev_[i].get();
        }
        if (i / cols != 0U) { // north neighbor at i-cols
            p.req_out[dir(MeshDir::kNorth)] = v_req_rev_[i - cols].get();
            p.req_in[dir(MeshDir::kNorth)] = v_req_fwd_[i - cols].get();
            p.rsp_out[dir(MeshDir::kNorth)] = v_rsp_rev_[i - cols].get();
            p.rsp_in[dir(MeshDir::kNorth)] = v_rsp_fwd_[i - cols].get();
        }
        routers_.push_back(std::make_unique<MeshRouter>(
            ctx, name + ".r" + std::to_string(i), i, cols, node_map,
            mgr_ports_[i].get(), std::move(egress_raw), p, flow_, book_.get()));
    }
}

axi::AxiChannel& NocMesh::subordinate_port(std::uint8_t node) {
    REALM_EXPECTS(node < sub_index_.size() && sub_index_[node] >= 0,
                  "node hosts no subordinate");
    return *sub_ports_[static_cast<std::size_t>(sub_index_[node])];
}

std::uint64_t NocMesh::total_forwarded() const noexcept {
    std::uint64_t total = 0;
    for (const auto& r : routers_) { total += r->forwarded(); }
    return total;
}

std::uint64_t NocMesh::total_stalls() const noexcept {
    std::uint64_t total = 0;
    for (const auto& r : routers_) { total += r->stall_cycles(); }
    return total;
}

std::uint64_t NocMesh::total_mux_w_stalls() const noexcept {
    std::uint64_t total = 0;
    for (const auto& m : muxes_) { total += m->w_stall_cycles(); }
    return total;
}

void NocMesh::check_flow_invariants() const {
    if (book_ == nullptr) { return; }
    book_->check_conserved();
    const auto check_links = [](const std::vector<std::unique_ptr<NocLink>>& v) {
        for (const auto& link : v) {
            if (link != nullptr) { link->check_bounded(); }
        }
    };
    check_links(h_req_fwd_);
    check_links(h_req_rev_);
    check_links(h_rsp_fwd_);
    check_links(h_rsp_rev_);
    check_links(v_req_fwd_);
    check_links(v_req_rev_);
    check_links(v_rsp_fwd_);
    check_links(v_rsp_rev_);
    for (std::size_t s = 0; s < egress_.size(); ++s) {
        for (std::size_t src = 0; src < egress_[s].size(); ++src) {
            check_staging_invariants(*egress_[s][src],
                                     book_->req(static_cast<std::uint8_t>(s),
                                                static_cast<std::uint8_t>(src)),
                                     flow_);
        }
    }
}

} // namespace realm::noc
