#include "traffic/workload.hpp"

#include "sim/check.hpp"

namespace realm::traffic {

std::optional<MemOp> StreamWorkload::next() {
    if (iteration_ >= cfg_.repeat) { return std::nullopt; }
    MemOp op;
    op.addr = cfg_.base + offset_;
    op.bytes = cfg_.op_bytes;
    op.compute_cycles = cfg_.compute_cycles;
    op.kind = (op_index_ % 16) < cfg_.store_ratio16 ? MemOp::Kind::kStore : MemOp::Kind::kLoad;
    ++op_index_;
    offset_ += cfg_.stride_bytes;
    if (offset_ + cfg_.op_bytes > cfg_.bytes) {
        offset_ = 0;
        ++iteration_;
    }
    return op;
}

std::optional<MemOp> RandomWorkload::next() {
    if (issued_ >= cfg_.num_ops) { return std::nullopt; }
    ++issued_;
    MemOp op;
    const std::uint64_t span = cfg_.bytes / cfg_.op_bytes;
    op.addr = cfg_.base + rng_.uniform(0, span - 1) * cfg_.op_bytes;
    op.bytes = cfg_.op_bytes;
    op.compute_cycles = cfg_.compute_cycles;
    op.kind = rng_.chance(cfg_.store_ratio16, 16) ? MemOp::Kind::kStore : MemOp::Kind::kLoad;
    return op;
}

PointerChaseWorkload::PointerChaseWorkload(Config cfg) : cfg_{cfg} {
    REALM_EXPECTS(cfg_.slots >= 2, "pointer chase needs at least two slots");
    // Sattolo's algorithm: a single cycle visiting every slot.
    chain_.resize(cfg_.slots);
    for (std::uint64_t i = 0; i < cfg_.slots; ++i) { chain_[i] = i; }
    sim::Rng rng{cfg_.seed};
    for (std::uint64_t i = cfg_.slots - 1; i > 0; --i) {
        const std::uint64_t j = rng.uniform(0, i - 1);
        std::swap(chain_[i], chain_[j]);
    }
}

std::optional<MemOp> PointerChaseWorkload::next() {
    if (hop_ >= cfg_.hops) { return std::nullopt; }
    ++hop_;
    MemOp op;
    op.kind = MemOp::Kind::kLoad;
    op.addr = cfg_.base + cursor_ * 8;
    op.bytes = 8;
    op.compute_cycles = 0;
    cursor_ = chain_[cursor_];
    return op;
}

} // namespace realm::traffic
