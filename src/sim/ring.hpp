/// \file
/// \brief Flat ring-buffer containers for the simulation hot path.
///
/// `std::deque` pays for its generality with 512-byte chunk allocations and
/// a double indirection on every access; the kernel's FIFOs are tiny (link
/// spill registers hold 2 entries, credit-return queues a few dozen) and
/// live on the per-cycle hot path, so they want one contiguous block —
/// inline when the bound is small, allocated once when it is not — and
/// index arithmetic instead of pointer chasing.
#pragma once

#include "sim/check.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace realm::sim {

/// Growable single-ended FIFO over one contiguous power-of-two ring.
///
/// Drop-in replacement for the `push_back`/`pop_front` subset of
/// `std::deque` used by the kernel's queues. Growth is geometric and
/// amortized; `reserve` at construction makes the steady state
/// allocation-free (the credit pool reserves its conservation bound, so it
/// never allocates after construction). `T` must be default-constructible
/// and movable — slots are materialized eagerly so wraparound is plain
/// index masking with no lifetime bookkeeping.
template <typename T>
class FlatRing {
public:
    FlatRing() = default;

    void reserve(std::size_t n) {
        if (n > cap_) { grow(ceil_pow2(n)); }
    }

    void push_back(T value) {
        if (size_ == cap_) { grow(cap_ == 0 ? kMinCapacity : cap_ * 2); }
        buf_[(head_ + size_) & mask_] = std::move(value);
        ++size_;
    }

    [[nodiscard]] T& front() {
        REALM_EXPECTS(size_ > 0, "front of empty ring");
        return buf_[head_];
    }
    [[nodiscard]] const T& front() const {
        REALM_EXPECTS(size_ > 0, "front of empty ring");
        return buf_[head_];
    }

    void pop_front() {
        REALM_EXPECTS(size_ > 0, "pop from empty ring");
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /// Entry `i` positions past the head (0 == front).
    [[nodiscard]] const T& operator[](std::size_t i) const {
        REALM_EXPECTS(i < size_, "ring index out of range");
        return buf_[(head_ + i) & mask_];
    }

    void clear() noexcept {
        head_ = 0;
        size_ = 0;
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

private:
    static constexpr std::size_t kMinCapacity = 4;

    static std::size_t ceil_pow2(std::size_t n) noexcept {
        std::size_t c = kMinCapacity;
        while (c < n) { c *= 2; }
        return c;
    }

    void grow(std::size_t new_cap) {
        auto fresh = std::make_unique<T[]>(new_cap);
        for (std::size_t i = 0; i < size_; ++i) {
            fresh[i] = std::move(buf_[(head_ + i) & mask_]);
        }
        buf_ = std::move(fresh);
        cap_ = new_cap;
        mask_ = new_cap - 1;
        head_ = 0;
    }

    std::unique_ptr<T[]> buf_;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace realm::sim
