/// Tests for the Table II area model and Table I overhead computation.
#include "area/area_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace realm::area {
namespace {

RealmParams paper_config() {
    // The Cheshire evaluation configuration (Table I footnote b): 64-bit
    // address and data width, 16-deep write buffer, 8 outstanding, 2 regions,
    // 3 units.
    RealmParams p;
    p.addr_width_bits = 64;
    p.data_width_bits = 64;
    p.num_pending = 8;
    p.buffer_depth = 16;
    p.num_regions = 2;
    p.num_units = 3;
    return p;
}

TEST(AreaModel, Table2ConstantsVerbatim) {
    // Spot-check the published constants survive in the model.
    EXPECT_DOUBLE_EQ(kTable2[0].constant, 260.6);   // bus guard
    EXPECT_DOUBLE_EQ(kTable2[3].constant, 1319.6);  // budget & period register
    EXPECT_DOUBLE_EQ(kTable2[6].constant, 4835.0);  // burst splitter
    EXPECT_DOUBLE_EQ(kTable2[6].per_addr_bit, 49.3);
    EXPECT_DOUBLE_EQ(kTable2[6].per_pending, 729.4);
    EXPECT_DOUBLE_EQ(kTable2[8].per_storage_word64, 264.4); // write buffer
    EXPECT_DOUBLE_EQ(kTable2[9].constant, 1928.5);  // tracking counters
    EXPECT_DOUBLE_EQ(kTable2[10].per_addr_bit, 20.8); // region decoders
}

TEST(AreaModel, BlockAreaLinearInParams) {
    RealmParams p = paper_config();
    const BlockLaw& splitter = kTable2[6];
    const double base = block_area_ge(splitter, p);
    p.num_pending += 1;
    EXPECT_DOUBLE_EQ(block_area_ge(splitter, p) - base, 729.4);
    p.addr_width_bits += 10;
    EXPECT_NEAR(block_area_ge(splitter, p) - base, 729.4 + 493.0, 1e-9);
}

TEST(AreaModel, PaperConfigUnitAreaCloseToPaper) {
    // Paper: 3 RT units = 83.6 kGE -> 27.87 kGE per unit. The published
    // linear model reproduces this within ~6 %.
    const double unit_kge = realm_unit_ge(paper_config()) / 1000.0;
    EXPECT_NEAR(unit_kge, 83.6 / 3.0, 0.06 * 83.6 / 3.0);
}

TEST(AreaModel, SystemOverheadInPaperBand) {
    EXPECT_NEAR(paper_overhead_percent(), 2.45, 0.01);
    const double model = model_overhead_percent(paper_config());
    EXPECT_GT(model, 2.0);
    EXPECT_LT(model, 3.0);
}

TEST(AreaModel, WriteBufferScalesWithStorage) {
    RealmParams p = paper_config();
    const double d16 = realm_unit_ge(p);
    p.buffer_depth = 2;
    const double d2 = realm_unit_ge(p);
    EXPECT_NEAR(d16 - d2, 264.4 * (16 - 2), 1e-6)
        << "storage coefficient applies per 64-bit word";
}

TEST(AreaModel, OptionalBlocksRemovable) {
    RealmParams p = paper_config();
    const double full = realm_unit_ge(p);
    p.splitter_present = false;
    const double no_split = realm_unit_ge(p);
    // Splitter + meta buffer at this config: 13921.4 + 3748.1 GE.
    EXPECT_NEAR(full - no_split, 13921.4 + 3748.1, 1.0);
    p.write_buffer_present = false;
    const double minimal = realm_unit_ge(p);
    EXPECT_NEAR(no_split - minimal, 11.4 + 264.4 * 16, 1.0);
}

TEST(AreaModel, ConfigFileScalesPerUnitAndRegion) {
    RealmParams p = paper_config();
    const double base = config_file_ge(p);
    p.num_units = 4;
    const double plus_unit = config_file_ge(p);
    // One more unit adds: burst cfg + C&S + regions x (budget&period +
    // boundary).
    const double expected_delta =
        83.5 + 24.6 + 2 * (1319.6 + 20.6 * 64);
    EXPECT_NEAR(plus_unit - base, expected_delta, 1e-6);
}

TEST(AreaModel, BreakdownSumsToSystemTotal) {
    const RealmParams p = paper_config();
    const auto breakdown = system_breakdown(p);
    double sum = 0;
    for (const BlockArea& b : breakdown) { sum += b.total_ge; }
    EXPECT_NEAR(sum, system_ge(p), 1e-6);
    EXPECT_EQ(breakdown.size(), kTable2.size());
}

TEST(AreaModel, Table1SharesConsistent) {
    // The published per-block percentages must match kge/total.
    for (std::size_t i = 1; i < kTable1.size(); ++i) {
        const double pct = 100.0 * kTable1[i].kge / kTable1[0].kge;
        EXPECT_NEAR(pct, kTable1[i].percent, 0.15) << kTable1[i].name;
    }
}

/// Sweep over the evaluated parameter ranges: areas stay positive, finite,
/// and monotone in every parameter.
class AreaSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AreaSweep, MonotoneAndSane) {
    const auto [addr, pending, depth] = GetParam();
    RealmParams p;
    p.addr_width_bits = static_cast<std::uint32_t>(addr);
    p.num_pending = static_cast<std::uint32_t>(pending);
    p.buffer_depth = static_cast<std::uint32_t>(depth);
    const double unit = realm_unit_ge(p);
    EXPECT_GT(unit, 0.0);
    EXPECT_TRUE(std::isfinite(unit));
    RealmParams bigger = p;
    bigger.addr_width_bits += 8;
    EXPECT_GT(realm_unit_ge(bigger), unit);
    bigger = p;
    bigger.num_pending += 2;
    EXPECT_GT(realm_unit_ge(bigger), unit);
}

INSTANTIATE_TEST_SUITE_P(ParamRanges, AreaSweep,
                         ::testing::Combine(::testing::Values(32, 48, 64),
                                            ::testing::Values(2, 8, 16),
                                            ::testing::Values(2, 8, 16)));

} // namespace
} // namespace realm::area
