#include "area/area_model.hpp"

#include "sim/check.hpp"

#include <cstring>

namespace realm::area {

namespace {

/// Blocks dropped when an optional feature is absent.
bool block_present(const BlockLaw& law, const RealmParams& p) noexcept {
    if (!p.splitter_present &&
        (std::strcmp(law.name, "Burst Splitter") == 0 ||
         std::strcmp(law.name, "Meta Buffer") == 0)) {
        return false;
    }
    if (!p.write_buffer_present && std::strcmp(law.name, "Write Buffer") == 0) {
        return false;
    }
    return true;
}

std::uint32_t instances_of(const BlockLaw& law, const RealmParams& p) noexcept {
    switch (law.mult) {
    case BlockLaw::Multiplicity::kPerSystem: return 1;
    case BlockLaw::Multiplicity::kPerUnit: return p.num_units;
    case BlockLaw::Multiplicity::kPerUnitRegion: return p.num_units * p.num_regions;
    }
    return 0;
}

bool is_config_block(const BlockLaw& law) noexcept {
    return std::strcmp(law.name, "Bus Guard") == 0 ||
           std::strcmp(law.name, "Burst config Register") == 0 ||
           std::strcmp(law.name, "C&S Register") == 0 ||
           std::strcmp(law.name, "Budget & Period Register") == 0 ||
           std::strcmp(law.name, "Region Boundary Register") == 0;
}

} // namespace

double block_area_ge(const BlockLaw& law, const RealmParams& p) noexcept {
    if (!block_present(law, p)) { return 0.0; }
    const double storage_words = static_cast<double>(p.storage_bits()) / 64.0;
    return law.constant + law.per_addr_bit * p.addr_width_bits +
           law.per_data_bit * p.data_width_bits + law.per_pending * p.num_pending +
           law.per_storage_word64 * storage_words;
}

std::vector<BlockArea> system_breakdown(const RealmParams& p) {
    std::vector<BlockArea> out;
    out.reserve(kTable2.size());
    for (const BlockLaw& law : kTable2) {
        BlockArea ba;
        ba.name = law.name;
        ba.instance_ge = block_area_ge(law, p);
        ba.instances = block_present(law, p) ? instances_of(law, p) : 0;
        ba.total_ge = ba.instance_ge * ba.instances;
        out.push_back(ba);
    }
    return out;
}

double realm_unit_ge(const RealmParams& p) noexcept {
    double total = 0.0;
    for (const BlockLaw& law : kTable2) {
        if (is_config_block(law)) { continue; }
        const double per_instance = block_area_ge(law, p);
        switch (law.mult) {
        case BlockLaw::Multiplicity::kPerSystem: break; // none in the unit
        case BlockLaw::Multiplicity::kPerUnit: total += per_instance; break;
        case BlockLaw::Multiplicity::kPerUnitRegion:
            total += per_instance * p.num_regions;
            break;
        }
    }
    return total;
}

double config_file_ge(const RealmParams& p) noexcept {
    double total = 0.0;
    for (const BlockLaw& law : kTable2) {
        if (!is_config_block(law)) { continue; }
        const double per_instance = block_area_ge(law, p);
        switch (law.mult) {
        case BlockLaw::Multiplicity::kPerSystem: total += per_instance; break;
        case BlockLaw::Multiplicity::kPerUnit: total += per_instance * p.num_units; break;
        case BlockLaw::Multiplicity::kPerUnitRegion:
            total += per_instance * p.num_units * p.num_regions;
            break;
        }
    }
    return total;
}

double system_ge(const RealmParams& p) noexcept {
    return realm_unit_ge(p) * p.num_units + config_file_ge(p);
}

double paper_overhead_percent() noexcept {
    // (3 RT units + RT CFG) / SoC total, all from Table I.
    const double rt = kTable1[4].kge + kTable1[5].kge;
    return 100.0 * rt / kTable1[0].kge;
}

double model_overhead_percent(const RealmParams& p) noexcept {
    const double rt_paper_kge = kTable1[4].kge + kTable1[5].kge;
    const double base_kge = kTable1[0].kge - rt_paper_kge; // Cheshire without REALM
    const double model_kge = system_ge(p) / 1000.0;
    return 100.0 * model_kge / (base_kge + model_kge);
}

} // namespace realm::area
