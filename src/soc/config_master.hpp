/// \file
/// \brief Hardware-root-of-trust style configuration manager.
///
/// A small AXI manager that executes a scripted sequence of single-beat
/// register reads/writes — the paper's boot flow: the trusted manager
/// claims the bus-guarded configuration space and initializes the REALM
/// units before runtime operation.
#pragma once

#include "axi/channel.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <deque>
#include <vector>

namespace realm::soc {

/// One scripted access.
struct ConfigOp {
    axi::Addr addr = 0;
    bool write = false;
    std::uint32_t wdata = 0;
    bool expect_error = false; ///< for negative tests (unclaimed/foreign TID)
};

/// Result of a completed access.
struct ConfigResult {
    ConfigOp op;
    std::uint32_t rdata = 0;
    bool error = false;
};

class ConfigMaster : public sim::Component {
public:
    ConfigMaster(sim::SimContext& ctx, std::string name, axi::AxiChannel& port,
                 axi::IdT tid = 0xC0);

    void reset() override;
    void tick() override;

    /// Appends an access to the script.
    void push(const ConfigOp& op) {
        script_.push_back(op);
        wake(); // the master idles once its script has drained
    }
    void push_write(axi::Addr addr, std::uint32_t wdata, bool expect_error = false) {
        push(ConfigOp{addr, true, wdata, expect_error});
    }
    void push_read(axi::Addr addr, bool expect_error = false) {
        push(ConfigOp{addr, false, 0, expect_error});
    }

    [[nodiscard]] bool done() const noexcept { return script_.empty() && !in_flight_; }
    [[nodiscard]] const std::vector<ConfigResult>& results() const noexcept { return results_; }
    /// Accesses whose error status did not match `expect_error`.
    [[nodiscard]] std::uint64_t unexpected_responses() const noexcept { return unexpected_; }
    [[nodiscard]] axi::IdT tid() const noexcept { return tid_; }

private:
    enum class Phase : std::uint8_t { kIdle, kAwaitW, kAwaitB, kAwaitR };

    axi::ManagerView port_;
    axi::IdT tid_;
    std::deque<ConfigOp> script_;
    std::vector<ConfigResult> results_;
    bool in_flight_ = false;
    Phase phase_ = Phase::kIdle;
    ConfigOp current_{};
    std::uint64_t unexpected_ = 0;
};

} // namespace realm::soc
