/// \file
/// \brief Ablation of the optional **throttling unit** (Section III-A): it
///        "limits the number of outstanding transactions to the downstream
///        memory system depending on the remaining budget, modulating
///        backpressure before the budget fully expires."
///
/// With throttling off, a budgeted DMA burns its credit at full speed and
/// then sits hard-isolated until the period ends (bursty service: deep
/// on/off pattern). With throttling on, the allowed outstanding transactions
/// shrink as credit drains, smoothing the same average bandwidth and
/// shortening the hard-isolation tail — visible to the victim core as a
/// tighter latency distribution.
///
/// Runs through the scenario engine (`--threads N`, `--json PATH`).
#include "scenario/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace realm::scenario;
    BenchOptions opts = parse_bench_args(argc, argv);

    std::puts("== Ablation: throttling unit on a budgeted DMA (4 KiB / 2000 cycles) ==\n");
    Sweep sweep = make_sweep("ablation-throttle");
    const auto results = run_with_options(opts, sweep);
    const ScenarioResult& off = results[0];
    const ScenarioResult& on = results[1];

    std::printf("%-28s %14s %14s\n", "", "throttle off", "throttle on");
    std::printf("%-28s %14.2f %14.2f\n", "DMA bandwidth [B/cyc]", off.dma_read_bw,
                on.dma_read_bw);
    std::printf("%-28s %14llu %14llu\n", "DMA hard-isolation cycles",
                static_cast<unsigned long long>(off.dma_isolation_cycles),
                static_cast<unsigned long long>(on.dma_isolation_cycles));
    std::printf("%-28s %14llu %14llu\n", "DMA throttle stalls",
                static_cast<unsigned long long>(off.dma_throttle_stalls),
                static_cast<unsigned long long>(on.dma_throttle_stalls));
    std::printf("%-28s %14llu %14llu\n", "DMA budget depletions",
                static_cast<unsigned long long>(off.dma_depletions),
                static_cast<unsigned long long>(on.dma_depletions));
    std::printf("%-28s %14.2f %14.2f\n", "core load latency (mean)", off.load_lat_mean,
                on.load_lat_mean);
    std::printf("%-28s %14llu %14llu\n", "core load latency (p99)",
                static_cast<unsigned long long>(off.load_lat_p99),
                static_cast<unsigned long long>(on.load_lat_p99));

    std::puts("\nthrottling converts hard isolation time into early backpressure");
    std::puts("(stalls) at equal average DMA bandwidth, smoothing the interference the");
    std::puts("core observes.");
    const bool throttled_early = on.dma_throttle_stalls > off.dma_throttle_stalls;
    const bool less_hard_isolation = on.dma_isolation_cycles < off.dma_isolation_cycles;
    return throttled_early && less_hard_isolation ? 0 : 1;
}
