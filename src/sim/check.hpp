/// \file
/// \brief Contract-checking helpers (Core Guidelines I.6/I.8 style).
///
/// Violations throw `realm::sim::ContractViolation` so tests can assert on
/// them and simulations fail loudly instead of silently corrupting state.
/// The checks stay enabled in release builds: they guard protocol and
/// bookkeeping invariants whose cost is negligible next to the simulation
/// work itself.
#pragma once

#include <stdexcept>
#include <string>

namespace realm::sim {

/// Exception thrown on any contract violation.
class ContractViolation : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Builds the diagnostic string and throws. Out-of-line to keep call sites
/// small.
[[noreturn]] void contract_violation(const char* kind, const char* file, int line,
                                     const std::string& message);

} // namespace realm::sim

/// Precondition check: argument/state requirements at function entry.
#define REALM_EXPECTS(cond, msg)                                                       \
    do {                                                                               \
        if (!(cond)) {                                                                 \
            ::realm::sim::contract_violation("precondition", __FILE__, __LINE__, msg); \
        }                                                                              \
    } while (false)

/// Postcondition / invariant check.
#define REALM_ENSURES(cond, msg)                                                        \
    do {                                                                                \
        if (!(cond)) {                                                                  \
            ::realm::sim::contract_violation("postcondition", __FILE__, __LINE__, msg); \
        }                                                                               \
    } while (false)

/// Marks a code path that must be unreachable.
#define REALM_UNREACHABLE(msg) \
    ::realm::sim::contract_violation("unreachable", __FILE__, __LINE__, msg)
