#include "scenario/runner.hpp"

#include "scenario/report.hpp" // worst_case_victim_latency

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

namespace realm::scenario {

std::vector<ScenarioResult> ScenarioRunner::run(const Sweep& sweep) const {
    std::vector<const ScenarioConfig*> configs;
    std::vector<std::string> labels;
    configs.reserve(sweep.points.size());
    labels.reserve(sweep.points.size());
    for (const SweepPoint& p : sweep.points) {
        configs.push_back(&p.config);
        labels.push_back(p.label);
    }
    return run_points(configs, labels);
}

std::vector<ScenarioResult>
ScenarioRunner::run(const std::vector<ScenarioConfig>& configs) const {
    std::vector<const ScenarioConfig*> ptrs;
    std::vector<std::string> labels;
    ptrs.reserve(configs.size());
    labels.reserve(configs.size());
    for (const ScenarioConfig& cfg : configs) {
        ptrs.push_back(&cfg);
        labels.push_back(cfg.name);
    }
    return run_points(ptrs, labels);
}

std::vector<ScenarioResult>
ScenarioRunner::run_points(const std::vector<const ScenarioConfig*>& configs,
                           const std::vector<std::string>& labels) const {
    std::vector<ScenarioResult> results(configs.size());
    if (configs.empty()) { return results; }

    unsigned threads = options_.threads;
    if (threads == 0) {
        // Each point's context spins up `cfg.shards` workers of its own, so
        // bound `threads x shards` by the hardware: autodetect divides the
        // core count by the widest shard request instead of stacking both
        // levels of parallelism onto every core.
        unsigned max_shards = 1;
        for (const ScenarioConfig* cfg : configs) {
            max_shards = std::max(max_shards, std::max(1U, cfg->shards));
        }
        const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
        threads = std::max(1U, hw / max_shards);
    }
    threads = std::min<unsigned>(threads, static_cast<unsigned>(configs.size()));

    if (threads <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i) {
            results[i] = run_scenario(*configs[i], labels[i]);
        }
        return results;
    }

    // Work-stealing over an atomic index: points differ wildly in cost
    // (baseline vs fully-contended), so static partitioning wastes workers.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < configs.size();
                 i = next.fetch_add(1)) {
                results[i] = run_scenario(*configs[i], labels[i]);
            }
        });
    }
    for (std::thread& th : pool) { th.join(); }
    return results;
}

std::vector<ScenarioResult>
ScenarioRunner::run_resumed(const Sweep& sweep, const std::string& resume_path,
                            std::size_t* reused_out) const {
    const std::unordered_map<std::uint64_t, ScenarioResult> cache =
        load_json_results(resume_path);

    std::vector<ScenarioResult> results(sweep.points.size());
    std::vector<const ScenarioConfig*> to_run;
    std::vector<std::string> labels;
    std::vector<std::size_t> slots;
    std::size_t reused = 0;
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        const SweepPoint& p = sweep.points[i];
        if (const auto it = cache.find(config_hash(p.config)); it != cache.end()) {
            results[i] = it->second;
            // The hash covers everything result-affecting; the label is
            // presentational and may have been renamed since the dump.
            results[i].label = p.label;
            ++reused;
            continue;
        }
        to_run.push_back(&p.config);
        labels.push_back(p.label);
        slots.push_back(i);
    }
    const std::vector<ScenarioResult> fresh = run_points(to_run, labels);
    for (std::size_t k = 0; k < fresh.size(); ++k) { results[slots[k]] = fresh[k]; }
    if (reused_out != nullptr) { *reused_out = reused; }
    return results;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void json_number(std::ostream& os, double v) {
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
}

} // namespace

void write_json(std::ostream& os, const Sweep& sweep,
                const std::vector<ScenarioResult>& results) {
    os << "{\n  \"sweep\": ";
    json_escape(os, sweep.name);
    os << ",\n  \"title\": ";
    json_escape(os, sweep.title);
    os << ",\n  \"baseline_index\": ";
    if (sweep.baseline_index) {
        os << *sweep.baseline_index;
    } else {
        os << "null";
    }
    os << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        os << "    {\"label\": ";
        json_escape(os, r.label);
        if (i < sweep.points.size()) {
            char hash_buf[24];
            std::snprintf(hash_buf, sizeof hash_buf, "0x%016llx",
                          static_cast<unsigned long long>(
                              config_hash(sweep.points[i].config)));
            os << ", \"config_hash\": \"" << hash_buf << '"';
        }
        os << ", \"seed\": " << r.seed;
        os << ", \"boot_ok\": " << (r.boot_ok ? "true" : "false");
        os << ", \"timed_out\": " << (r.timed_out ? "true" : "false");
        os << ", \"run_cycles\": " << r.run_cycles;
        os << ", \"ops\": " << r.ops;
        os << ", \"load_lat_mean\": ";
        json_number(os, r.load_lat_mean);
        os << ", \"load_lat_min\": " << r.load_lat_min;
        os << ", \"load_lat_max\": " << r.load_lat_max;
        os << ", \"load_lat_p99\": " << r.load_lat_p99;
        os << ", \"store_lat_mean\": ";
        json_number(os, r.store_lat_mean);
        os << ", \"store_lat_max\": " << r.store_lat_max;
        os << ", \"dma_bytes\": " << r.dma_bytes;
        os << ", \"dma_read_bw\": ";
        json_number(os, r.dma_read_bw);
        os << ", \"dma_depletions\": " << r.dma_depletions;
        os << ", \"dma_isolation_cycles\": " << r.dma_isolation_cycles;
        os << ", \"dma_throttle_stalls\": " << r.dma_throttle_stalls;
        os << ", \"dma_cut_through\": " << r.dma_cut_through;
        os << ", \"xbar_w_stalls\": " << r.xbar_w_stalls;
        os << ", \"fabric_hops\": " << r.fabric_hops;
        if (r.mon_enabled) {
            // Monitoring-plane telemetry: all integers, so a parsed-back
            // point is bit-identical to the run that produced it. The mgr_*
            // arrays are columnar per-manager data (0 = victim core,
            // 1+i = interference DMA i).
            const auto emit_array = [&os](const char* key,
                                          const std::vector<std::uint64_t>& v) {
                os << ", \"" << key << "\": [";
                for (std::size_t k = 0; k < v.size(); ++k) {
                    os << (k > 0 ? ", " : "") << v[k];
                }
                os << ']';
            };
            os << ", \"mon_enabled\": true";
            os << ", \"mon_lat_p50\": " << r.mon_lat_p50;
            os << ", \"mon_lat_p99\": " << r.mon_lat_p99;
            os << ", \"mon_lat_p999\": " << r.mon_lat_p999;
            os << ", \"mon_timeouts\": " << r.mon_timeouts;
            os << ", \"mon_orphan_rsp\": " << r.mon_orphan_rsp;
            os << ", \"mon_orphan_req\": " << r.mon_orphan_req;
            os << ", \"mon_stall_events\": " << r.mon_stall_events;
            os << ", \"mon_wgap_events\": " << r.mon_wgap_events;
            os << ", \"mon_true_positives\": " << r.mon_true_positives;
            os << ", \"mon_false_positives\": " << r.mon_false_positives;
            os << ", \"mon_false_negatives\": " << r.mon_false_negatives;
            os << ", \"mon_first_detect\": " << r.mon_first_detect;
            emit_array("mgr_p50", r.mgr_p50);
            emit_array("mgr_p99", r.mgr_p99);
            emit_array("mgr_p999", r.mgr_p999);
            emit_array("mgr_flagged", r.mgr_flagged);
            emit_array("mgr_signals", r.mgr_signals);
            emit_array("mgr_hostile", r.mgr_hostile);
            emit_array("mgr_detect", r.mgr_detect);
            emit_array("mgr_occ_milli", r.mgr_occ_milli);
        }
        os << ", \"ticks_executed\": " << r.ticks_executed;
        os << ", \"ticks_skipped\": " << r.ticks_skipped;
        // Per-shard slices of the tick counters — the load-balance picture
        // of the sharded kernel (single-element arrays when unsharded).
        os << ", \"shard_ticks_executed\": [";
        for (std::size_t s = 0; s < r.shard_ticks_executed.size(); ++s) {
            os << (s > 0 ? ", " : "") << r.shard_ticks_executed[s];
        }
        os << "], \"shard_ticks_skipped\": [";
        for (std::size_t s = 0; s < r.shard_ticks_skipped.size(); ++s) {
            os << (s > 0 ? ", " : "") << r.shard_ticks_skipped[s];
        }
        os << ']';
        os << ", \"fast_forwarded_cycles\": " << r.fast_forwarded_cycles;
        os << ", \"simulated_cycles\": " << r.simulated_cycles;
        os << ", \"wall_seconds\": ";
        json_number(os, r.wall_seconds);
        // Host-side simulation speed (simulated cycles per wall second):
        // the regression metric CI tracks across commits.
        os << ", \"sim_cycles_per_sec\": ";
        json_number(os, r.wall_seconds > 0.0
                            ? static_cast<double>(r.simulated_cycles) / r.wall_seconds
                            : 0.0);
        if (!r.profile.empty()) {
            // Cycle-attribution profile (`--profile`), heaviest bucket
            // first. Host-side observability: the resume scanner ignores it
            // (scan_result keys off fixed field names), so a dump with
            // profiles resumes exactly like one without.
            os << ", \"profile\": [";
            for (std::size_t k = 0; k < r.profile.size(); ++k) {
                const ProfileRow& row = r.profile[k];
                os << (k > 0 ? ", " : "") << "{\"type\": ";
                json_escape(os, row.type);
                os << ", \"shard\": " << row.shard
                   << ", \"components\": " << row.components
                   << ", \"ticks\": " << row.ticks << ", \"nanos\": " << row.nanos
                   << '}';
            }
            os << ']';
        }
        os << '}' << (i + 1 < results.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

bool write_json_file(const std::string& path, const Sweep& sweep,
                     const std::vector<ScenarioResult>& results) {
    std::ofstream out{path};
    if (!out) { return false; }
    write_json(out, sweep, results);
    return out.good();
}

namespace {

/// Start of the value of `"key": <value>` in `line`, or nullptr when the
/// key is absent. The emitter writes one point object per line with unique
/// keys, so a flat scan is unambiguous.
const char* find_value(const std::string& line, const char* key) {
    const std::string needle = std::string{"\""} + key + "\": ";
    const std::size_t pos = line.find(needle);
    return pos == std::string::npos ? nullptr : line.c_str() + pos + needle.size();
}

double scan_number(const std::string& line, const char* key, double fallback = 0.0) {
    const char* start = find_value(line, key);
    if (start == nullptr || std::strncmp(start, "null", 4) == 0) { return fallback; }
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    return end == start ? fallback : v;
}

std::uint64_t scan_u64(const std::string& line, const char* key) {
    // Not via strtod: 64-bit values (seeds) exceed double's 53-bit mantissa.
    const char* start = find_value(line, key);
    if (start == nullptr) { return 0; }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(start, &end, 10);
    return end == start ? 0 : static_cast<std::uint64_t>(v);
}

bool scan_bool(const std::string& line, const char* key, bool fallback) {
    const char* start = find_value(line, key);
    return start == nullptr ? fallback : std::strncmp(start, "true", 4) == 0;
}

/// Parses `"key": [1, 2, ...]` into a u64 vector (empty when absent or not
/// an array). Note the needle includes the opening quote, so the flat keys
/// `ticks_executed` / `ticks_skipped` never match the `shard_`-prefixed
/// array keys and vice versa.
std::vector<std::uint64_t> scan_u64_array(const std::string& line, const char* key) {
    std::vector<std::uint64_t> out;
    const char* p = find_value(line, key);
    if (p == nullptr || *p != '[') { return out; }
    ++p;
    while (*p != '\0' && *p != ']') {
        while (*p == ' ' || *p == ',') { ++p; }
        if (*p == ']' || *p == '\0') { break; }
        char* end = nullptr;
        const unsigned long long v = std::strtoull(p, &end, 10);
        if (end == p) { break; }
        out.push_back(static_cast<std::uint64_t>(v));
        p = end;
    }
    return out;
}

/// Extracts the point's label (first string field of every point line).
/// Labels come from the registry and never contain escapes in practice; a
/// label with a quote simply fails to parse and the point is skipped, in
/// line with the loaders' overall tolerance.
bool scan_label(const std::string& line, std::string& out) {
    const char* start = find_value(line, "label");
    if (start == nullptr || *start != '"') { return false; }
    const char* close = std::strchr(start + 1, '"');
    if (close == nullptr) { return false; }
    out.assign(start + 1, close);
    return true;
}

/// Parses the metric fields of one point line (shared by the hash-keyed
/// resume loader and the label-keyed diff loader).
ScenarioResult scan_result(const std::string& line) {
    ScenarioResult r;
    r.seed = scan_u64(line, "seed");
    r.boot_ok = scan_bool(line, "boot_ok", true);
    r.timed_out = scan_bool(line, "timed_out", false);
    r.run_cycles = scan_u64(line, "run_cycles");
    r.ops = scan_u64(line, "ops");
    r.load_lat_mean = scan_number(line, "load_lat_mean");
    r.load_lat_min = scan_u64(line, "load_lat_min");
    r.load_lat_max = scan_u64(line, "load_lat_max");
    r.load_lat_p99 = scan_u64(line, "load_lat_p99");
    r.store_lat_mean = scan_number(line, "store_lat_mean");
    r.store_lat_max = scan_u64(line, "store_lat_max");
    r.dma_bytes = scan_u64(line, "dma_bytes");
    r.dma_read_bw = scan_number(line, "dma_read_bw");
    r.dma_depletions = scan_u64(line, "dma_depletions");
    r.dma_isolation_cycles = scan_u64(line, "dma_isolation_cycles");
    r.dma_throttle_stalls = scan_u64(line, "dma_throttle_stalls");
    r.dma_cut_through = scan_u64(line, "dma_cut_through");
    r.xbar_w_stalls = scan_u64(line, "xbar_w_stalls");
    r.fabric_hops = scan_u64(line, "fabric_hops");
    r.mon_enabled = scan_bool(line, "mon_enabled", false);
    if (r.mon_enabled) {
        r.mon_lat_p50 = scan_u64(line, "mon_lat_p50");
        r.mon_lat_p99 = scan_u64(line, "mon_lat_p99");
        r.mon_lat_p999 = scan_u64(line, "mon_lat_p999");
        r.mon_timeouts = scan_u64(line, "mon_timeouts");
        r.mon_orphan_rsp = scan_u64(line, "mon_orphan_rsp");
        r.mon_orphan_req = scan_u64(line, "mon_orphan_req");
        r.mon_stall_events = scan_u64(line, "mon_stall_events");
        r.mon_wgap_events = scan_u64(line, "mon_wgap_events");
        r.mon_true_positives = scan_u64(line, "mon_true_positives");
        r.mon_false_positives = scan_u64(line, "mon_false_positives");
        r.mon_false_negatives = scan_u64(line, "mon_false_negatives");
        r.mon_first_detect = scan_u64(line, "mon_first_detect");
        r.mgr_p50 = scan_u64_array(line, "mgr_p50");
        r.mgr_p99 = scan_u64_array(line, "mgr_p99");
        r.mgr_p999 = scan_u64_array(line, "mgr_p999");
        r.mgr_flagged = scan_u64_array(line, "mgr_flagged");
        r.mgr_signals = scan_u64_array(line, "mgr_signals");
        r.mgr_hostile = scan_u64_array(line, "mgr_hostile");
        r.mgr_detect = scan_u64_array(line, "mgr_detect");
        r.mgr_occ_milli = scan_u64_array(line, "mgr_occ_milli");
    }
    r.ticks_executed = scan_u64(line, "ticks_executed");
    r.ticks_skipped = scan_u64(line, "ticks_skipped");
    r.shard_ticks_executed = scan_u64_array(line, "shard_ticks_executed");
    r.shard_ticks_skipped = scan_u64_array(line, "shard_ticks_skipped");
    r.fast_forwarded_cycles = scan_u64(line, "fast_forwarded_cycles");
    r.simulated_cycles = scan_u64(line, "simulated_cycles");
    r.wall_seconds = scan_number(line, "wall_seconds");
    return r;
}

} // namespace

std::unordered_map<std::uint64_t, ScenarioResult>
load_json_results(const std::string& path) {
    std::unordered_map<std::uint64_t, ScenarioResult> cache;
    std::ifstream in{path};
    if (!in) { return cache; }
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash_pos = line.find("\"config_hash\": \"");
        if (hash_pos == std::string::npos) { continue; }
        char* end = nullptr;
        const std::uint64_t hash = std::strtoull(
            line.c_str() + hash_pos + std::strlen("\"config_hash\": \""), &end, 16);
        if (end == nullptr || *end != '"') { continue; }

        cache.emplace(hash, scan_result(line));
    }
    return cache;
}

std::unordered_map<std::string, ScenarioResult>
load_json_results_by_label(const std::string& path) {
    std::unordered_map<std::string, ScenarioResult> cache;
    std::ifstream in{path};
    if (!in) { return cache; }
    std::string line;
    std::string label;
    while (std::getline(in, line)) {
        // Point lines are the ones carrying a config hash (the document
        // header also has a "label"-free "sweep" string, never matched).
        if (line.find("\"config_hash\": \"") == std::string::npos) { continue; }
        if (!scan_label(line, label)) { continue; }
        ScenarioResult r = scan_result(line);
        r.label = label;
        cache.emplace(std::move(label), std::move(r));
    }
    return cache;
}

std::vector<ProfileRow> load_profile_rows(const std::string& path) {
    std::vector<ProfileRow> rows;
    std::ifstream in{path};
    if (!in) { return rows; }
    std::string line;
    while (std::getline(in, line)) {
        const char* p = find_value(line, "profile");
        if (p == nullptr || *p != '[') { continue; }
        // Row objects are flat ({"type": ..., "shard": ..., ...}) and type
        // names never contain braces, so brace matching is unambiguous.
        while (*p != '\0' && *p != ']') {
            const char* open = std::strchr(p, '{');
            if (open == nullptr) { break; }
            const char* close = std::strchr(open, '}');
            if (close == nullptr) { break; }
            const std::string obj(open, close + 1);
            ProfileRow row;
            if (const char* t = find_value(obj, "type");
                t != nullptr && *t == '"') {
                if (const char* q = std::strchr(t + 1, '"'); q != nullptr) {
                    row.type.assign(t + 1, q);
                }
            }
            row.shard = static_cast<unsigned>(scan_u64(obj, "shard"));
            row.components = scan_u64(obj, "components");
            row.ticks = scan_u64(obj, "ticks");
            row.nanos = scan_u64(obj, "nanos");
            if (!row.type.empty()) { rows.push_back(std::move(row)); }
            p = close + 1;
        }
    }
    return rows;
}

namespace {

/// Host-side simulation speed of a (possibly parsed-back) result, or 0 when
/// the run has no usable timing (e.g. a baseline dumped before the fields
/// existed, or a zero-length run).
double host_speed(const ScenarioResult& r) {
    return r.wall_seconds > 0.0
               ? static_cast<double>(r.simulated_cycles) / r.wall_seconds
               : 0.0;
}

} // namespace

DiffReport diff_against_baseline(const std::string& baseline_path,
                                 const std::vector<ScenarioResult>& results,
                                 double rel_threshold, std::uint64_t abs_slack,
                                 double speed_threshold, double speed_slack) {
    const std::unordered_map<std::string, ScenarioResult> baseline =
        load_json_results_by_label(baseline_path);
    DiffReport report;
    for (const ScenarioResult& r : results) {
        DiffEntry e;
        e.label = r.label;
        e.current_worst = worst_case_victim_latency(r);
        const auto it = baseline.find(r.label);
        if (it == baseline.end()) {
            e.missing_in_baseline = true;
            report.entries.push_back(std::move(e));
            continue;
        }
        ++report.compared;
        e.baseline_worst = worst_case_victim_latency(it->second);
        const bool health_regressed =
            (r.timed_out && !it->second.timed_out) ||
            (!r.boot_ok && it->second.boot_ok);
        const double limit =
            static_cast<double>(e.baseline_worst) * (1.0 + rel_threshold);
        const bool latency_regressed =
            static_cast<double>(e.current_worst) > limit &&
            e.current_worst > e.baseline_worst + abs_slack;
        e.regressed = health_regressed || latency_regressed;
        report.regressions += e.regressed ? 1U : 0U;

        // Separate host-speed gate: compares sim cycles / wall second
        // (recomputed from the stored fields, so old baselines work) and
        // never feeds into the latency verdict.
        if (speed_threshold > 0.0) {
            e.baseline_speed = host_speed(it->second);
            e.current_speed = host_speed(r);
            if (e.baseline_speed > 0.0 && e.current_speed > 0.0) {
                ++report.speed_compared;
                e.speed_regressed =
                    e.current_speed < e.baseline_speed * (1.0 - speed_threshold) &&
                    e.current_speed < e.baseline_speed - speed_slack;
                report.speed_regressions += e.speed_regressed ? 1U : 0U;
            }
        }
        report.entries.push_back(std::move(e));
    }
    return report;
}

} // namespace realm::scenario
